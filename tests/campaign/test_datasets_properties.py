"""Property tests for dataset assembly and transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.datasets import LDMS_FEATURES, RunDataset, RunRecord
from repro.network.counters import APP_COUNTERS


def _dataset(n, t, seed):
    rng = np.random.default_rng(seed)
    runs = []
    for i in range(n):
        y = rng.uniform(1, 10, size=t)
        runs.append(
            RunRecord(
                run_index=i,
                start_time=float(i * 1000),
                step_times=y,
                compute_times=y * 0.3,
                mpi_times=y * 0.7,
                counters=rng.uniform(0, 1e9, size=(t, 13)),
                ldms=rng.uniform(0, 1e10, size=(t, 8)),
                num_routers=int(rng.integers(4, 64)),
                num_groups=int(rng.integers(1, 8)),
                neighborhood=[],
                routine_times={"Wait": float(y.sum())},
            )
        )
    return RunDataset(key="P-128", runs=runs)


@given(n=st.integers(2, 10), t=st.integers(2, 12), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_property_mean_centering_reconstructs(n, t, seed):
    ds = _dataset(n, t, seed)
    xh, yh = ds.mean_centered()
    xm, ym = ds.mean_trends()
    # (x - m) + m loses ~eps * m absolutely, so scale the tolerance to the
    # mean's magnitude, not each element's.
    np.testing.assert_allclose(
        xh + xm[None], ds.X, rtol=1e-9, atol=1e-12 * float(np.abs(ds.X).max())
    )
    np.testing.assert_allclose(
        yh + ym[None], ds.Y, rtol=1e-9, atol=1e-12 * float(np.abs(ds.Y).max())
    )


@given(n=st.integers(2, 10), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_property_relative_performance_min_one(n, seed):
    ds = _dataset(n, 4, seed)
    rel = ds.relative_performance()
    assert rel.min() == pytest.approx(1.0)
    assert (rel >= 1.0 - 1e-12).all()


@given(
    n=st.integers(3, 12),
    tau=st.floats(0.8, 1.2),
    seed=st.integers(0, 50),
)
@settings(max_examples=30, deadline=None)
def test_property_optimality_monotone_in_tau(n, tau, seed):
    ds = _dataset(n, 4, seed)
    p_low = ds.optimality(tau=tau)
    p_high = ds.optimality(tau=tau + 0.1)
    # Raising tau can only mark more runs optimal.
    assert (p_high >= p_low).all()


@given(n=st.integers(2, 6), t=st.integers(2, 8), seed=st.integers(0, 20))
@settings(max_examples=20, deadline=None)
def test_property_feature_tensor_consistent(n, t, seed):
    ds = _dataset(n, t, seed)
    full = ds.features(placement=True, io=True, sys=True)
    names = ds.feature_names(placement=True, io=True, sys=True)
    assert full.shape == (n, t, len(names))
    # The app block is exactly X; the io/sys block exactly ldms.
    np.testing.assert_array_equal(full[:, :, : len(APP_COUNTERS)], ds.X)
    np.testing.assert_array_equal(
        full[:, :, len(APP_COUNTERS) + 2 :], ds.ldms
    )
    assert names[len(APP_COUNTERS)] == "NUM_ROUTERS"
    assert names[len(APP_COUNTERS) + 2 :] == LDMS_FEATURES


def test_dataset_save_load_roundtrip(tmp_path):
    ds = _dataset(4, 6, 7)
    ds.save(tmp_path / "P-128")
    back = RunDataset.load(tmp_path / "P-128")
    np.testing.assert_allclose(back.Y, ds.Y)
    np.testing.assert_allclose(back.X, ds.X)
    np.testing.assert_allclose(back.ldms, ds.ldms)
    assert back.key == ds.key
    assert [r.num_routers for r in back.runs] == [r.num_routers for r in ds.runs]
