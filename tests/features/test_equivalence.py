"""The refactor changed plumbing, not numbers.

Each test reconstructs a pre-refactor code path inline (direct
``ds.features`` / ``build_windows`` / mean-centering calls, the same CV
loops) and checks the store-served analyses produce byte-identical
arrays and scores on the shared tiny campaign.  The final test asserts
the warm-run acceptance criterion: a second fig09–fig12 pass performs
zero feature builds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.deviation import deviation_analysis
from repro.analysis.forecasting import forecast_mape
from repro.features import STATS, TIERS, build_windows, get_store
from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.metrics import mape
from repro.ml.model_selection import GroupKFold
from repro.ml.pipeline import make_forecaster
from repro.ml.rfe import relevance_scores
from repro.network.counters import APP_COUNTERS


def _fast_gbr():
    return GradientBoostedRegressor(n_estimators=8, max_depth=2, random_state=0)


@pytest.fixture(autouse=True)
def _isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield


@pytest.fixture()
def milc(tiny_campaign):
    return tiny_campaign["MILC-128"]


def test_store_views_byte_identical_to_legacy(milc):
    store = get_store(milc)
    for name, spec in TIERS.items():
        a = store.features(name)
        b = milc.features(**spec.kwargs())
        assert a.tobytes() == b.tobytes(), name

    m, k = 4, 3
    x, y, g = store.windows("app+placement", m, k)
    x2, y2, g2 = build_windows(milc.features(placement=True), milc.Y, m, k)
    assert x.tobytes() == x2.tobytes()
    assert y.tobytes() == y2.tobytes()
    assert g.tobytes() == g2.tobytes()

    fx, fy, fo = store.flat_mean_centered()
    xh, yh = milc.mean_centered()
    n, t, h = xh.shape
    _, ym = milc.mean_trends()
    assert fx.tobytes() == xh.reshape(n * t, h).tobytes()
    assert fy.tobytes() == yh.reshape(n * t).tobytes()
    assert fo.tobytes() == np.tile(ym, n).tobytes()


def test_fig09_path_matches_legacy_inline(milc):
    """deviation_analysis == the pre-refactor flatten + relevance_scores."""
    kwargs = dict(n_splits=4, seed=0, max_samples=300)
    res = deviation_analysis(milc, estimator_factory=_fast_gbr, **kwargs)

    xh, yh = milc.mean_centered()
    n, t, h = xh.shape
    _, ym = milc.mean_trends()
    legacy = relevance_scores(
        xh.reshape(n * t, h),
        yh.reshape(n * t),
        APP_COUNTERS,
        estimator_factory=_fast_gbr,
        n_splits=kwargs["n_splits"],
        seed=kwargs["seed"],
        mape_offset=np.tile(ym, n),
        max_samples=kwargs["max_samples"],
    )
    np.testing.assert_array_equal(res.relevance.scores, legacy.scores)
    assert res.prediction_mape == legacy.prediction_mape


def test_fig10_path_matches_legacy_inline(milc):
    """forecast_mape == the pre-refactor windows + grouped-CV loop."""
    m, k, n_splits, seed = 4, 3, 2, 0

    def ridge(fold_seed):
        return make_forecaster("ridge")

    res = forecast_mape(
        milc, m, k, tier="app+placement", n_splits=n_splits, seed=seed,
        model_factory=ridge,
    )

    x, y, groups = build_windows(milc.features(placement=True), milc.Y, m, k)
    per_fold = []
    for fold, (train, test) in enumerate(
        GroupKFold(n_splits=n_splits, seed=seed).split(groups)
    ):
        model = ridge(seed + fold)
        model.fit(x[train], y[train])
        per_fold.append(mape(y[test], model.predict(x[test])))
    assert res.per_fold == per_fold
    assert res.mape == float(np.mean(per_fold))


def test_warm_experiment_pass_rebuilds_nothing(tiny_campaign, monkeypatch):
    """Acceptance: a warm second fig09–fig12 pass does zero feature builds."""
    from repro.experiments import (
        _forecast_common,
        fig09_relevance,
        fig10_forecast_milc,
        fig11_importances,
        fig12_longrun,
    )

    # A cheap deterministic stand-in for the attention forecaster; stage
    # bodies resolve the factory from _forecast_common at call time, so
    # one patch covers every figure.
    def cheap(seed=0):
        return make_forecaster("ridge")

    monkeypatch.setattr(_forecast_common, "fast_forecaster", cheap)

    # Shrink fig09's RFE sweep the same way — the estimator's size has no
    # bearing on the cache accounting under test.
    from repro.analysis import deviation

    real_deviation_analysis = deviation.deviation_analysis
    monkeypatch.setattr(
        deviation,
        "deviation_analysis",
        lambda ds, **kw: real_deviation_analysis(
            ds, estimator_factory=_fast_gbr, **kw
        ),
    )

    figs = (fig09_relevance, fig10_forecast_milc, fig11_importances, fig12_longrun)
    for fig in figs:
        fig.run(campaign=tiny_campaign, fast=True)
    cold = STATS.snapshot()

    for fig in figs:
        fig.run(campaign=tiny_campaign, fast=True)
    warm = STATS.snapshot()

    assert warm[2] == cold[2], "warm pass recomputed features"
    assert warm[1] == cold[1], "warm pass went back to disk"
    assert warm[0] > cold[0]  # everything was served from the memo
