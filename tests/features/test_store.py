"""FeatureStore behaviour: memoization, disk roundtrip, corruption, windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.datasets import RunDataset, RunRecord
from repro.features import (
    LDMS_SPEC,
    STATS,
    TIERS,
    FeatureSpec,
    FeatureStore,
    build_windows,
    clear_feature_caches,
    get_store,
)


def _dataset(key="SYN-64", n=6, t=12, seed=0):
    rng = np.random.default_rng(seed)
    runs = []
    for i in range(n):
        y = 10 + rng.normal(0, 1, t)
        runs.append(
            RunRecord(
                run_index=i,
                start_time=float(i) * 1e4,
                step_times=y,
                compute_times=y * 0.2,
                mpi_times=y * 0.8,
                counters=rng.lognormal(0, 0.1, (t, 13)),
                ldms=rng.lognormal(0, 0.1, (t, 8)),
                num_routers=10,
                num_groups=3,
                neighborhood=[],
                routine_times={},
            )
        )
    return RunDataset(key=key, runs=runs)


@pytest.fixture(autouse=True)
def _isolated_cache(monkeypatch, tmp_path):
    """Point disk persistence at a throwaway dir and reset the counters."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    STATS.reset()
    yield tmp_path
    STATS.reset()


# --------------------------------------------------------------------- #
# memoization and stats
# --------------------------------------------------------------------- #


def test_memo_hit_after_first_build():
    store = get_store(_dataset())
    a = store.features("app")
    assert STATS.snapshot() == (0, 0, 1)
    b = store.features("app")
    assert STATS.snapshot() == (1, 0, 1)
    assert a is b


def test_store_is_attached_to_dataset():
    ds = _dataset()
    assert get_store(ds) is get_store(ds)
    assert get_store(ds) is ds._feature_store


def test_tier_matrix_and_names_match_dataset():
    ds = _dataset()
    store = get_store(ds)
    for name, spec in TIERS.items():
        feats = store.features(name)
        assert np.array_equal(feats, ds.features(**spec.kwargs()))
        names = store.feature_names(name)
        assert names == ds.feature_names(**spec.kwargs())
        assert feats.shape[2] == len(names)
    assert np.array_equal(store.features(LDMS_SPEC), ds.ldms)


def test_aliased_spec_shares_cache_entry():
    # The token comes from the column blocks, not the display name.
    alias = FeatureSpec("my-alias", placement=True)
    assert alias.token == TIERS["app+placement"].token
    store = get_store(_dataset())
    store.features("app+placement")
    misses = STATS.misses
    store.features(alias)
    assert STATS.misses == misses  # served from the same memo entry


def test_unknown_tier_raises():
    with pytest.raises(ValueError, match="unknown tier"):
        get_store(_dataset()).features("everything")


def test_clear_feature_caches_drops_memo():
    store = get_store(_dataset())
    store.features("app")
    clear_feature_caches()
    store.features("app")
    # Second build is not a memo hit: disk hit (persisted) or rebuild.
    assert STATS.hits == 0
    assert STATS.disk_hits + STATS.misses == 2


# --------------------------------------------------------------------- #
# disk persistence
# --------------------------------------------------------------------- #


def test_disk_roundtrip_across_objects(_isolated_cache):
    a = _dataset()
    ref = get_store(a).features("app")
    assert STATS.snapshot() == (0, 0, 1)
    entries = list(_isolated_cache.rglob("tier-app.npz"))
    assert len(entries) == 1

    # A distinct object with identical content hits the disk entry.
    b = _dataset()
    got = get_store(b).features("app")
    assert STATS.snapshot() == (0, 1, 1)
    assert np.array_equal(got, ref)


def test_content_fingerprint_distinguishes_datasets():
    a, b = _dataset(seed=0), _dataset(seed=1)
    assert FeatureStore(a).fingerprint() == FeatureStore(a).fingerprint()
    assert FeatureStore(a).fingerprint() != FeatureStore(b).fingerprint()


def test_provenance_fingerprint_wins_over_content():
    a, b = _dataset(), _dataset()
    a.campaign_fingerprint = "deadbeef"
    assert FeatureStore(a).fingerprint() != FeatureStore(b).fingerprint()
    c = _dataset(seed=7)  # different content, same provenance stamp
    c.campaign_fingerprint = "deadbeef"
    assert FeatureStore(a).fingerprint() == FeatureStore(c).fingerprint()


def test_corrupt_entry_warns_and_regenerates(_isolated_cache):
    ref = get_store(_dataset()).features("app")
    (entry,) = list(_isolated_cache.rglob("tier-app.npz"))
    entry.write_bytes(b"not a zipfile")

    with pytest.warns(RuntimeWarning, match="corrupt feature cache entry"):
        got = get_store(_dataset()).features("app")
    assert np.array_equal(got, ref)
    assert STATS.disk_hits == 0 and STATS.misses == 2
    # The regenerated entry is valid again.
    with np.load(entry) as npz:
        assert np.array_equal(npz["x"], ref)


def test_cache_disabled_by_env(monkeypatch, _isolated_cache):
    monkeypatch.setenv("REPRO_FEATURE_CACHE", "0")
    get_store(_dataset()).features("app")
    assert list(_isolated_cache.rglob("*.npz")) == []


def test_unwritable_cache_degrades_to_memo(monkeypatch, tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file, not a dir")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "sub"))
    store = get_store(_dataset())
    with pytest.warns(RuntimeWarning, match="cache write failed"):
        a = store.features("app")
    assert np.array_equal(a, store.features("app"))  # memo still serves


# --------------------------------------------------------------------- #
# mean-centering views
# --------------------------------------------------------------------- #


def test_flat_mean_centered_matches_legacy_construction():
    ds = _dataset()
    x, y, offsets = get_store(ds).flat_mean_centered()
    xh, yh = ds.mean_centered()
    n, t, h = xh.shape
    _, ym = ds.mean_trends()
    assert np.array_equal(x, xh.reshape(n * t, h))
    assert np.array_equal(y, yh.reshape(n * t))
    assert np.array_equal(offsets, np.tile(ym, n))


# --------------------------------------------------------------------- #
# windows
# --------------------------------------------------------------------- #


def test_windows_match_build_windows():
    ds = _dataset()
    x, y, g = get_store(ds).windows("app", m=3, k=2)
    x2, y2, g2 = build_windows(ds.features(), ds.Y, m=3, k=2)
    assert np.array_equal(x, x2)
    assert np.array_equal(y, y2)
    assert np.array_equal(g, g2)


def test_windows_align_m_shrinks_sample_count():
    ds = _dataset(t=16)
    xa, ya, _ = get_store(ds).windows("app", m=3, k=2)
    xb, yb, _ = get_store(ds).windows("app", m=3, k=2, align_m=6)
    assert len(xb) < len(xa)
    x2, y2, _ = build_windows(ds.features(), ds.Y, m=3, k=2, align_m=6)
    assert np.array_equal(xb, x2) and np.array_equal(yb, y2)


def test_window_params_validated_before_cache():
    ds = _dataset(t=10)
    store = get_store(ds)
    with pytest.raises(ValueError):
        store.windows("app", m=8, k=4)  # k runs past the end of the run
    with pytest.raises(ValueError):
        store.windows("app", m=4, k=2, align_m=2)  # align_m < m
    with pytest.raises(ValueError):
        store.windows("app", m=0, k=1)
    assert STATS.total == 0  # nothing was built or cached


def test_single_run_dataset_windows():
    ds = _dataset(n=1, t=12)
    x, y, g = get_store(ds).windows("app", m=3, k=2)
    assert len(x) == 12 - 3 - 2 + 1
    assert np.all(g == 0)


def test_channel_windows_targets():
    ds = _dataset(n=3, t=10)
    m, k = 3, 2
    x, y, g = get_store(ds).channel_windows("IO_PT_FLIT_TOT", m=m, k=k)
    names = LDMS_SPEC.feature_names()
    ci = names.index("IO_PT_FLIT_TOT")
    # First sample: run 0, window ends at tc = m-1; target is the channel's
    # next-k sum.
    np.testing.assert_allclose(x[0], ds.ldms[0, :m, :])
    np.testing.assert_allclose(y[0], ds.ldms[0, m : m + k, ci].sum())


def test_channel_windows_unknown_channel():
    with pytest.raises(ValueError, match="unknown channel"):
        get_store(_dataset()).channel_windows("NOT_A_CHANNEL", m=3, k=2)
