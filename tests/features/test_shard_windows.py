"""Shard-boundary window tensors: byte-identity to the monolithic build.

The correctness crux of the incremental-append path: a streamed
dataset's tier matrices and window tensors, assembled shard by shard,
must be *byte-identical* to building them over the combined dataset in
one pass — for every window size, both topology cells, and uneven
shards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.runner import CampaignConfig
from repro.campaign.streaming import StreamConfig, _combine_shards, run_stream
from repro.features import FeatureSpec, build_windows, get_store
from repro.features.windows import interleave_windows
from repro.obs import METRICS

from tests.features.test_store import _dataset


def _streamed(counts, key="SYN-64", t=12):
    """Hand-built multi-shard dataset plus its monolithic twin."""
    views = []
    for i, n in enumerate(counts):
        v = _dataset(key=key, n=n, t=t, seed=100 + i)
        v.campaign_fingerprint = f"window{i:012d}fp00"
        views.append(v)
    combined = _combine_shards(
        key,
        views,
        [v.campaign_fingerprint for v in views],
        [0.0] * len(views),
        "streamfp00000000",
    )
    # The monolithic twin: same runs, no shard views, no provenance.
    from repro.campaign.datasets import RunDataset

    mono = RunDataset(key=key, runs=list(combined.runs))
    return combined, mono


def _assert_identical(combined, mono, spec, m, k, align_m=None):
    xs, ys, gs = get_store(combined, persist=False).windows(
        spec, m, k, align_m=align_m
    )
    xm, ym, gm = build_windows(
        spec.matrix(mono), [r.step_times for r in mono.runs], m, k,
        align_m=align_m,
    )
    assert xs.tobytes() == np.ascontiguousarray(xm).tobytes()
    assert ys.tobytes() == np.ascontiguousarray(ym).tobytes()
    assert gs.tobytes() == np.ascontiguousarray(gm).tobytes()


@pytest.mark.parametrize("m,k", [(1, 1), (5, 3), (11, 1)])
def test_shard_windows_byte_identical(m, k):
    """m = 1, a mid-size m, and m spanning all but one step of a shard."""
    combined, mono = _streamed([2, 3, 2])
    _assert_identical(combined, mono, FeatureSpec.resolve("app"), m, k)


def test_shard_windows_byte_identical_with_align():
    combined, mono = _streamed([3, 2])
    spec = FeatureSpec.resolve("app+placement")
    _assert_identical(combined, mono, spec, 2, 2, align_m=5)


def test_shard_tier_matrix_byte_identical():
    combined, mono = _streamed([2, 4])
    spec = FeatureSpec.resolve("app+placement+io+sys")
    xs = get_store(combined, persist=False).features(spec)
    assert xs.tobytes() == np.ascontiguousarray(spec.matrix(mono)).tobytes()


def test_shard_channel_windows_byte_identical():
    combined, mono = _streamed([2, 2])
    from repro.features import LDMS_SPEC

    ch = LDMS_SPEC.feature_names()[0]
    xs, ys, gs = get_store(combined, persist=False).channel_windows(ch, 3, 2)
    feats = LDMS_SPEC.matrix(mono)
    xm, ym, gm = build_windows(feats, feats[:, :, 0], 3, 2)
    assert np.array_equal(xs, xm)
    assert np.array_equal(ys, ym)
    assert np.array_equal(gm, gs)


def test_interleave_rejects_mismatched_shards():
    a = build_windows(np.zeros((2, 8, 3)), np.zeros((2, 8)), 2, 1)
    b = build_windows(np.zeros((1, 9, 3)), np.zeros((1, 9)), 2, 1)
    with pytest.raises(ValueError):
        interleave_windows([a, b], [2, 1])
    with pytest.raises(ValueError):
        interleave_windows([a], [2, 1])


def test_append_counters_track_shard_reuse(tmp_path, monkeypatch):
    """Appending one shard rebuilds exactly that shard's tensor."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    hits = METRICS.counter("features.append.hit")
    misses = METRICS.counter("features.append.miss")
    combined, _ = _streamed([2, 3])
    h0, m0 = hits.value, misses.value
    get_store(combined, persist=True).windows("app", 3, 2)
    assert (hits.value - h0, misses.value - m0) == (0, 2)

    # Rebuild with one extra shard in a fresh process-equivalent state:
    # the two old shards disk-hit, only the new one builds.
    views = combined.shard_views
    extra = _dataset(key="SYN-64", n=2, t=12, seed=999)
    extra.campaign_fingerprint = "window2extra0fp0"
    bigger = _combine_shards(
        "SYN-64",
        [v.__class__(key=v.key, runs=list(v.runs),
                     campaign_fingerprint=v.campaign_fingerprint)
         for v in views] + [extra],
        [v.campaign_fingerprint for v in views] + [extra.campaign_fingerprint],
        [0.0, 0.0, 0.0],
        "streamfp11111111",
    )
    h0, m0 = hits.value, misses.value
    get_store(bigger, persist=True).windows("app", 3, 2)
    assert (hits.value - h0, misses.value - m0) == (2, 1)


@pytest.mark.parametrize("cell", [None, ("df+", "valiant")])
def test_real_stream_windows_byte_identical_per_cell(
    cell, tmp_path, monkeypatch
):
    """Both topology cells: streamed tensors == monolithic tensors."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    overrides = {}
    if cell is not None:
        from repro.campaign.validate import validate_axis

        topo, routing = validate_axis(*cell)
        overrides = {"topology": topo, "routing": routing}
    base = CampaignConfig.tiny(**overrides)
    camp = run_stream(StreamConfig(base=base, windows=2, window_days=2.0))
    ds = camp["MILC-128"]
    assert len(ds.shard_views) == 2
    spec = FeatureSpec.resolve("app")
    for m, k in [(1, 1), (4, 3)]:
        xs, ys, gs = get_store(ds, persist=False).windows(spec, m, k)
        xm, ym, gm = build_windows(
            spec.matrix(ds), [r.step_times for r in ds.runs], m, k
        )
        assert xs.tobytes() == np.ascontiguousarray(xm).tobytes()
        assert ys.tobytes() == np.ascontiguousarray(ym).tobytes()
        assert gs.tobytes() == np.ascontiguousarray(gm).tobytes()
