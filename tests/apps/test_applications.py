"""Application models vs the paper's §III characterisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.amg import AMG
from repro.apps.milc import MILC, REGULAR_STEPS, WARMUP_STEPS
from repro.apps.minivite import MiniVite
from repro.apps.registry import DATASET_KEYS, get_application
from repro.apps.umt import UMT
from repro.topology.dragonfly import DragonflyTopology


@pytest.fixture(scope="module")
def topo():
    # Apps need >= num_nodes compute nodes; build a topology large enough
    # for the 512-node configurations but still quick.
    return DragonflyTopology(groups=8, row_size=8, col_size=4, nodes_per_router=4)


def _nodes_for(topo, app, seed=0):
    rng = np.random.default_rng(seed)
    return np.sort(
        rng.choice(topo.compute_nodes, size=app.num_nodes, replace=False)
    )


def test_registry_covers_table1():
    assert DATASET_KEYS == [
        "AMG-128",
        "AMG-512",
        "MILC-128",
        "MILC-512",
        "miniVite-128",
        "UMT-128",
    ]
    for key in DATASET_KEYS:
        app = get_application(key)
        assert app.dataset_key == key
        app.validate()
    with pytest.raises(KeyError):
        get_application("HPL-1024")
    # Singletons.
    assert get_application("AMG-128") is get_application("AMG-128")


def test_table1_rows():
    rows = {get_application(k).table1_row() for k in DATASET_KEYS}
    assert ("AMG", "1.1", 128, "-P 32 16 16 -n 32 32 32 -problem 2") in rows
    assert ("AMG", "1.1", 512, "-P 32 32 32 -n 32 32 32 -problem 2") in rows
    assert ("MILC", "7.8.0", 128, "n128_large.in") in rows
    assert ("MILC", "7.8.0", 512, "n512_large.in") in rows
    assert ("miniVite", "1.0", 128, "-f nlpkkt240.bin -t 1E-02 -i 6") in rows
    assert ("UMT", "2.0", 128, "custom_8k.cmg 4 2 4 4 4 0.04") in rows


@pytest.mark.parametrize(
    "key,frac_lo,frac_hi",
    [
        ("AMG-128", 0.72, 0.80),  # paper: 76%
        ("AMG-512", 0.78, 0.86),  # paper: 82%
        ("MILC-128", 0.85, 0.93),  # paper: ~89%
        ("MILC-512", 0.85, 0.93),
        ("miniVite-128", 0.96, 1.0),  # paper: >98%
        ("UMT-128", 0.26, 0.34),  # paper: ~30%
    ],
)
def test_mpi_fractions_match_paper(key, frac_lo, frac_hi):
    sm = get_application(key).step_model()
    assert frac_lo <= sm.mpi_fraction <= frac_hi


@pytest.mark.parametrize(
    "key,steps",
    [
        ("AMG-128", 20),
        ("AMG-512", 20),
        ("MILC-128", 80),
        ("MILC-512", 80),
        ("miniVite-128", 6),
        ("UMT-128", 7),
    ],
)
def test_step_counts_match_paper(key, steps):
    assert get_application(key).num_steps == steps


def test_milc_warmup_steps_faster():
    sm = get_application("MILC-128").step_model()
    total = sm.compute + sm.mpi
    warm = total[:WARMUP_STEPS].mean()
    reg = total[WARMUP_STEPS:].mean()
    assert warm < 0.5 * reg
    assert WARMUP_STEPS + REGULAR_STEPS == 80


def test_amg_weak_scaling_slower_at_512():
    t128 = get_application("AMG-128").step_model()
    t512 = get_application("AMG-512").step_model()
    assert t512.total_mean_time > t128.total_mean_time


def test_milc_steps_shorter_than_amg():
    """Paper §III-B: MILC steps are shorter in duration than AMG's."""
    amg = get_application("AMG-128").step_model()
    milc = get_application("MILC-128").step_model()
    assert milc.mpi.mean() + milc.compute.mean() < amg.mpi.mean() + amg.compute.mean()


def test_rank_counts():
    assert get_application("AMG-128").num_ranks == 8192
    assert get_application("AMG-512").num_ranks == 32768
    assert get_application("MILC-512").num_ranks == 32768


@pytest.mark.parametrize("key", DATASET_KEYS)
def test_flow_geometry_valid(topo, key):
    app = get_application(key)
    nodes = _nodes_for(topo, app)
    fs = app.flow_geometry(topo, nodes)
    assert len(fs) > 0
    assert fs.total_volume > 0
    routers = np.unique(topo.node_router(nodes))
    assert np.isin(fs.src, routers).all()
    assert np.isin(fs.dst, routers).all()


@pytest.mark.parametrize("key", DATASET_KEYS)
def test_routine_mixes_match_paper_dominants(key):
    mix = get_application(key).routine_mix()
    assert sum(mix.values()) == pytest.approx(1.0)
    if key.startswith("AMG"):
        assert {"Iprobe", "Test", "Testall", "Waitall", "Allreduce"} <= set(mix)
    elif key.startswith("MILC"):
        assert {"Allreduce", "Wait", "Isend", "Irecv"} <= set(mix)
    elif key.startswith("miniVite"):
        assert mix["Waitall"] > 0.5  # "almost all of the MPI time"
    else:  # UMT
        assert {"Wait", "Barrier", "Allreduce"} <= set(mix)


def test_sensitivity_profiles():
    """Message-size physics: AMG/UMT endpoint-bound, MILC fabric-bound."""
    amg = get_application("AMG-128")
    milc = get_application("MILC-128")
    umt = get_application("UMT-128")
    assert amg.endpoint_sensitivity > amg.fabric_sensitivity
    assert umt.endpoint_sensitivity > umt.fabric_sensitivity
    assert milc.fabric_sensitivity > milc.endpoint_sensitivity
    # AMG at 512 leans more on the fabric than at 128 (paper Fig. 9).
    amg512 = get_application("AMG-512")
    assert amg512.fabric_sensitivity > amg.fabric_sensitivity


def test_minivite_intrinsic_variation_largest():
    sigmas = {k: get_application(k).intensity_sigma for k in DATASET_KEYS}
    assert max(sigmas, key=sigmas.get) == "miniVite-128"


def test_blended_slowdown():
    app = get_application("MILC-128")
    assert app.blended_slowdown(1.0, 1.0) == pytest.approx(1.0)
    s = app.blended_slowdown(2.0, 1.0)
    assert s == pytest.approx(1.0 + app.fabric_sensitivity)
    # Fabric congestion hurts MILC more than endpoint congestion.
    assert app.blended_slowdown(2.0, 1.0) > app.blended_slowdown(1.0, 2.0)


def test_invalid_node_counts():
    for cls, bad in ((AMG, 64), (MILC, 256), (MiniVite, 512), (UMT, 512)):
        with pytest.raises(ValueError):
            cls(bad)
    with pytest.raises(ValueError):
        AMG(0)


def test_minivite_phase_cached():
    mv = get_application("miniVite-128")
    assert mv.phase is mv.phase  # lru_cache returns the same object


def test_step_model_validation():
    from repro.apps.base import StepModel

    with pytest.raises(ValueError):
        StepModel(np.ones(3), np.ones(4), np.ones(3))
    with pytest.raises(ValueError):
        StepModel(np.ones(3), -np.ones(3), np.ones(3))
    sm = StepModel(np.ones(3), np.ones(3) * 3, np.ones(3))
    assert sm.mpi_fraction == pytest.approx(0.75)
