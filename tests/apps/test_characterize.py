"""Communication characterisation matches the paper's §III-B prose."""

from __future__ import annotations

import pytest

from repro.apps.characterize import characterize, characterize_all, render_profiles


@pytest.fixture(scope="module")
def profiles():
    return {p.key: p for p in characterize_all()}


def test_all_datasets_characterised(profiles):
    assert set(profiles) == {
        "AMG-128",
        "AMG-512",
        "MILC-128",
        "MILC-512",
        "miniVite-128",
        "UMT-128",
    }
    for p in profiles.values():
        assert p.messages_per_rank_per_step > 0
        assert p.mean_message_bytes > 0
        assert p.bytes_per_rank_per_step == pytest.approx(
            p.messages_per_rank_per_step * p.mean_message_bytes
        )


def test_amg_many_small_messages(profiles):
    """Paper: 'AMG sends a large number of small-sized messages'."""
    amg = profiles["AMG-128"]
    milc = profiles["MILC-128"]
    assert amg.messages_per_rank_per_step > milc.messages_per_rank_per_step
    assert amg.mean_message_bytes < milc.mean_message_bytes


def test_milc_large_messages(profiles):
    """Paper: 'MILC sends large point-to-point messages'."""
    assert profiles["MILC-128"].mean_message_bytes > 4096


def test_umt_sparse_but_serialised(profiles):
    umt = profiles["UMT-128"]
    # Few messages per step compared with AMG's multigrid chatter.
    assert umt.messages_per_rank_per_step < profiles["AMG-128"].messages_per_rank_per_step
    assert "wavefront" in umt.notes


def test_minivite_irregular(profiles):
    assert "Louvain" in profiles["miniVite-128"].pattern
    assert "data-dependent" in profiles["miniVite-128"].notes


def test_render(profiles):
    text = render_profiles(list(profiles.values()))
    assert "msgs/rank/step" in text
    assert "MILC-512" in text


def test_unknown_app_type():
    class Fake:
        pass

    with pytest.raises(TypeError):
        characterize(Fake())  # type: ignore[arg-type]
