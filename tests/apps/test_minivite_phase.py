"""The packaged miniVite Louvain phase matches a fresh kernel run.

``repro.apps.minivite`` ships a precomputed phase artifact for the
default ``(KERNEL_VERTICES, KERNEL_PARTITIONS)`` configuration so cold
campaign generation never pays the ~0.4 s kernel run per process.  The
artifact must stay bit-identical to what the kernel computes; when this
test fails after an intentional kernel change, bump
``_KERNEL_CACHE_VERSION`` and regenerate the ``.npz`` with the same
``np.savez_compressed`` field layout (see ``_cached_phase``).
"""

from __future__ import annotations

import numpy as np

from repro.apps.kernels.louvain import run_louvain_phase, synthetic_kkt_graph
from repro.apps.minivite import (
    KERNEL_PARTITIONS,
    KERNEL_VERTICES,
    _load_phase,
    _phase_data_path,
)


def _fresh_phase():
    rng = np.random.default_rng(1_234_567)
    adj = synthetic_kkt_graph(KERNEL_VERTICES, rng=rng)
    return run_louvain_phase(adj, KERNEL_PARTITIONS, rng=rng)


def test_packaged_phase_exists_and_matches_fresh_compute():
    path = _phase_data_path(KERNEL_VERTICES, KERNEL_PARTITIONS)
    assert path.is_file(), (
        f"packaged phase artifact missing: {path} — regenerate it after "
        "kernel changes (see module docstring)"
    )
    packaged = _load_phase(path)
    assert packaged is not None, f"packaged phase artifact unreadable: {path}"
    fresh = _fresh_phase()
    assert packaged.num_vertices == fresh.num_vertices
    assert packaged.num_edges == fresh.num_edges
    assert packaged.num_partitions == fresh.num_partitions
    np.testing.assert_array_equal(packaged.modularity, fresh.modularity)
    np.testing.assert_array_equal(packaged.moved, fresh.moved)
    np.testing.assert_array_equal(
        packaged.partition_traffic, fresh.partition_traffic
    )


def test_load_phase_missing_or_corrupt_returns_none(tmp_path):
    assert _load_phase(tmp_path / "nope.npz") is None
    bad = tmp_path / "bad.npz"
    bad.write_bytes(b"not an npz")
    assert _load_phase(bad) is None
