"""Kernel substrates: halo accounting, multigrid, Louvain, sweep."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kernels.halo import (
    halo_messages_per_exchange,
    halo_surface_bytes,
    mean_message_size,
)
from repro.apps.kernels.louvain import (
    run_louvain_phase,
    synthetic_kkt_graph,
)
from repro.apps.kernels.multigrid import MultigridHierarchy
from repro.apps.kernels.sweep import SweepSchedule

# --------------------------------------------------------------------- #
# halo
# --------------------------------------------------------------------- #


def test_halo_surface_bytes_3d():
    b = halo_surface_bytes((32, 32, 32), bytes_per_site=8.0)
    np.testing.assert_allclose(b, np.full(3, 32 * 32 * 8.0))


def test_halo_surface_bytes_anisotropic():
    b = halo_surface_bytes((8, 4, 2), bytes_per_site=1.0)
    np.testing.assert_allclose(b, [4 * 2, 8 * 2, 8 * 4])


def test_halo_surface_bytes_4d_milc():
    # MILC's 4^4 local lattice: every face has 4^3 = 64 sites.
    b = halo_surface_bytes((4, 4, 4, 4), bytes_per_site=96.0)
    np.testing.assert_allclose(b, np.full(4, 64 * 96.0))


def test_halo_ghost_width_clamped():
    b1 = halo_surface_bytes((4, 4), 1.0, ghost_width=1)
    b8 = halo_surface_bytes((4, 4), 1.0, ghost_width=8)  # > extent
    assert (b8 <= b1 * 4).all()


def test_halo_validation():
    with pytest.raises(ValueError):
        halo_surface_bytes((0, 4), 1.0)
    with pytest.raises(ValueError):
        halo_surface_bytes((4, 4), -1.0)
    with pytest.raises(ValueError):
        halo_surface_bytes((4, 4), 1.0, ghost_width=0)
    with pytest.raises(ValueError):
        halo_messages_per_exchange(0)


def test_halo_messages_and_mean():
    assert halo_messages_per_exchange(4) == 8
    assert mean_message_size(np.array([10.0, 30.0])) == 20.0


# --------------------------------------------------------------------- #
# multigrid
# --------------------------------------------------------------------- #


def test_multigrid_levels_shrink():
    h = MultigridHierarchy.from_problem((32, 16, 16), (32, 32, 32))
    assert h.num_levels >= 4
    sizes = [np.prod(lv.local_shape) for lv in h.levels]
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
    # Messages get smaller with level, neighbour counts grow.
    assert h.levels[0].bytes_per_neighbor > h.levels[-1].bytes_per_neighbor
    assert h.levels[0].neighbors < h.levels[-1].neighbors <= 26


def test_multigrid_small_messages():
    """AMG's signature: many messages, small mean size (paper §III-B)."""
    h = MultigridHierarchy.from_problem((32, 32, 32), (32, 32, 32))
    assert h.messages_per_rank_per_step() > 50
    assert h.mean_message_bytes() < 16_384


def test_multigrid_totals_consistent():
    h = MultigridHierarchy.from_problem((4, 4, 4), (16, 16, 16))
    total = sum(
        lv.neighbors * lv.bytes_per_neighbor * lv.exchanges_per_cycle
        for lv in h.levels
    )
    assert h.bytes_per_rank_per_step() == pytest.approx(total)
    assert h.allreduces_per_step() == 2 * h.gmres_iterations + h.num_levels


def test_multigrid_validation():
    with pytest.raises(ValueError):
        MultigridHierarchy.from_problem((4, 4), (8, 8, 8))  # type: ignore[arg-type]
    with pytest.raises(ValueError):
        MultigridHierarchy.from_problem((4, 4, 0), (8, 8, 8))
    with pytest.raises(ValueError):
        MultigridHierarchy.from_problem((4, 4, 4), (1, 1, 1), min_local=4)


@given(exp=st.integers(2, 6))
@settings(max_examples=10, deadline=None)
def test_property_multigrid_depth_tracks_problem_size(exp):
    size = 2**exp
    h = MultigridHierarchy.from_problem((2, 2, 2), (size, size, size))
    # Coarsening by 2 from size down to min_local=2: exp levels.
    assert h.num_levels == exp


# --------------------------------------------------------------------- #
# louvain
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def phase():
    rng = np.random.default_rng(42)
    adj = synthetic_kkt_graph(512, rng=rng)
    return run_louvain_phase(adj, num_partitions=8, rng=rng)


def test_louvain_graph_is_symmetric_no_selfloops():
    adj = synthetic_kkt_graph(512)
    assert (adj != adj.T).nnz == 0
    assert adj.diagonal().sum() == 0


def test_louvain_modularity_improves(phase):
    assert phase.iterations >= 1
    assert phase.modularity[-1] > 0.0
    # Modularity is (weakly) increasing under greedy moves.
    assert (np.diff(phase.modularity) >= -1e-9).all()


def test_louvain_movement_decays(phase):
    if phase.iterations >= 3:
        assert phase.moved[-1] < phase.moved[0]


def test_louvain_traffic_shape_and_decay(phase):
    p = phase.num_partitions
    assert phase.partition_traffic.shape == (phase.iterations, p, p)
    vols = phase.iteration_volumes()
    assert vols[0] == vols.max()  # the initial ghost exchange dominates
    assert (vols >= 0).all()
    # No self-partition traffic.
    for it in range(phase.iterations):
        assert np.trace(phase.partition_traffic[it]) == 0.0


def test_louvain_partition_weights_normalised(phase):
    w = phase.partition_weights()
    assert w.shape == (phase.num_partitions,)
    assert w.sum() == pytest.approx(1.0)
    assert (w >= 0).all()


def test_louvain_scale_to_graph(phase):
    assert phase.scale_to_graph(phase.num_edges) == pytest.approx(1.0)
    assert phase.scale_to_graph() > 1.0  # nlpkkt240 is much larger


def test_louvain_validation():
    adj = synthetic_kkt_graph(64)
    with pytest.raises(ValueError):
        run_louvain_phase(adj, num_partitions=0)


# --------------------------------------------------------------------- #
# sweep
# --------------------------------------------------------------------- #


def test_sweep_stage_count():
    s = SweepSchedule((4, 4, 2), (8, 8, 8), angles_per_octant=8, energy_groups=4)
    assert s.stages_per_octant == 4 + 4 + 2 - 2
    assert s.critical_path_stages == s.stages_per_octant + 7
    assert s.num_ranks == 32
    assert s.octants == 8


def test_sweep_face_bytes():
    s = SweepSchedule((2, 2, 2), (4, 8, 16), angles_per_octant=2, energy_groups=3)
    fb = s.face_bytes()
    np.testing.assert_allclose(
        fb, np.array([8 * 16, 4 * 16, 4 * 8]) * 2 * 3 * 8.0
    )
    assert s.bytes_per_rank_per_step() == pytest.approx(fb.sum() * 8)
    assert s.messages_per_rank_per_step() == 24
    assert s.mean_message_bytes() == pytest.approx(fb.sum() / 3)


def test_sweep_wavefront_sizes_sum_to_ranks():
    s = SweepSchedule((4, 3, 2), (4, 4, 4), 8, 4)
    for octant in range(8):
        sizes = s.wavefront_sizes(octant)
        assert sizes.sum() == s.num_ranks
        assert len(sizes) == s.stages_per_octant + 1
        assert sizes[0] == 1  # the sweep starts at one corner rank


def test_sweep_pipeline_efficiency_bounds():
    shallow = SweepSchedule((2, 2, 2), (8, 8, 8), 8, 4)
    deep = SweepSchedule((32, 16, 16), (8, 8, 8), 8, 4)
    for s in (shallow, deep):
        assert 0 < s.pipeline_efficiency() < 1
    # Deeper grids waste more of the pipeline.
    assert deep.pipeline_efficiency() < 1.0


def test_sweep_validation():
    with pytest.raises(ValueError):
        SweepSchedule((2, 2), (4, 4, 4), 8, 4)  # type: ignore[arg-type]
    with pytest.raises(ValueError):
        SweepSchedule((2, 2, 0), (4, 4, 4), 8, 4)
    with pytest.raises(ValueError):
        SweepSchedule((2, 2, 2), (4, 4, 4), 0, 4)
