"""Scheduler: capacity invariants, FCFS/backfill behaviour, queries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TINY, rng_for
from repro.system.jobs import JobRecord, JobRequest
from repro.system.scheduler import Scheduler
from repro.topology.dragonfly import DragonflyTopology


def _req(user, t, nodes, dur, probe=False):
    return JobRequest(
        user=user,
        name=f"{user}-job",
        submit_time=t,
        num_nodes=nodes,
        duration=dur,
        is_probe=probe,
    )


@pytest.fixture()
def sched(tiny_topo):
    return Scheduler(tiny_topo, rng=rng_for("sched-test"))


def test_job_request_validation():
    with pytest.raises(ValueError):
        _req("u", 0, 0, 10)
    with pytest.raises(ValueError):
        _req("u", 0, 4, 0)


def test_immediate_start_on_empty_machine(sched):
    res = sched.schedule([_req("u1", 100.0, 10, 500.0)])
    assert len(res.jobs) == 1
    job = res.jobs[0]
    assert job.start_time == 100.0
    assert job.end_time == 600.0
    assert job.queue_wait == 0.0
    assert len(job.nodes) == 10


def test_capacity_never_exceeded(tiny_topo, sched):
    rng = np.random.default_rng(1)
    reqs = [
        _req(f"u{i % 5}", float(rng.uniform(0, 1000)), int(rng.integers(4, 60)),
             float(rng.uniform(100, 800)))
        for i in range(60)
    ]
    res = sched.schedule(reqs)
    # At any event boundary, running nodes <= compute pool, no node reuse.
    times = sorted({j.start_time for j in res.jobs})
    for t in times:
        running = res.running_at(t)
        all_nodes = np.concatenate([j.nodes for j in running])
        assert len(all_nodes) == len(np.unique(all_nodes))
        assert len(all_nodes) <= len(tiny_topo.compute_nodes)
        # Never allocate an I/O node.
        assert not np.isin(all_nodes, tiny_topo.io_nodes).any()


def test_queueing_when_full(tiny_topo, sched):
    cap = len(tiny_topo.compute_nodes)
    res = sched.schedule(
        [_req("big", 0.0, cap, 100.0), _req("late", 1.0, cap, 50.0)]
    )
    assert len(res.jobs) == 2
    first, second = res.jobs
    assert second.start_time == pytest.approx(first.end_time)
    assert second.queue_wait == pytest.approx(99.0)


def test_backfill_small_job_jumps_queue(tiny_topo, sched):
    cap = len(tiny_topo.compute_nodes)
    res = sched.schedule(
        [
            _req("big1", 0.0, cap - 4, 100.0),
            _req("big2", 1.0, cap - 4, 100.0),  # must wait for big1
            _req("small", 2.0, 4, 10.0),  # fits the 4 leftover nodes now
        ]
    )
    by_user = {j.user: j for j in res.jobs}
    assert by_user["small"].start_time == pytest.approx(2.0)
    assert by_user["big2"].start_time >= by_user["big1"].end_time


def test_oversized_job_dropped(tiny_topo, sched):
    res = sched.schedule([_req("huge", 0.0, 10_000, 100.0)])
    assert len(res.jobs) == 0
    assert len(res.unscheduled) == 1


def test_horizon_cutoff(tiny_topo):
    sched = Scheduler(tiny_topo, rng=rng_for("hz"), horizon=50.0)
    cap = len(tiny_topo.compute_nodes)
    res = sched.schedule(
        [_req("a", 0.0, cap, 100.0), _req("b", 10.0, cap, 100.0)]
    )
    assert len(res.jobs) == 1
    assert len(res.unscheduled) == 1


def test_overlapping_and_running_queries(sched):
    res = sched.schedule(
        [
            _req("a", 0.0, 8, 100.0),
            _req("b", 50.0, 8, 100.0),
            _req("c", 200.0, 8, 50.0),
        ]
    )
    assert {j.user for j in res.running_at(60.0)} == {"a", "b"}
    assert {j.user for j in res.overlapping(90.0, 210.0)} == {"a", "b", "c"}
    assert res.overlapping(90.0, 210.0, min_nodes=9) == []
    assert {j.user for j in res.running_at(300.0)} == set()


def test_probe_flag_and_query(sched):
    res = sched.schedule(
        [_req("bg", 0.0, 8, 100.0), _req("User-8", 10.0, 8, 100.0, probe=True)]
    )
    probes = res.probes()
    assert len(probes) == 1
    assert probes[0].user == "User-8"


def test_utilisation(tiny_topo, sched):
    res = sched.schedule([_req("a", 0.0, 64, 100.0)])
    u = res.utilisation(50.0, len(tiny_topo.compute_nodes))
    assert u == pytest.approx(64 / len(tiny_topo.compute_nodes))


def test_job_record_overlaps():
    req = _req("u", 0.0, 4, 10.0)
    rec = JobRecord(1, req, 5.0, 15.0, np.arange(4))
    assert rec.overlaps(0, 6)
    assert rec.overlaps(14, 20)
    assert not rec.overlaps(15, 20)
    assert not rec.overlaps(0, 5)


@given(seed=st.integers(0, 200))
@settings(max_examples=15, deadline=None)
def test_property_no_double_allocation(seed):
    topo = DragonflyTopology.from_preset(TINY)
    rng = np.random.default_rng(seed)
    sched = Scheduler(topo, rng=rng)
    reqs = [
        _req(
            f"u{int(rng.integers(0, 8))}",
            float(rng.uniform(0, 500)),
            int(rng.integers(1, 50)),
            float(rng.uniform(10, 300)),
        )
        for _ in range(40)
    ]
    res = sched.schedule(reqs)
    assert len(res.jobs) + len(res.unscheduled) == len(reqs)
    events = sorted(
        {j.start_time for j in res.jobs} | {j.end_time for j in res.jobs}
    )
    for t in events:
        running = res.running_at(t)
        if not running:
            continue
        nodes = np.concatenate([j.nodes for j in running])
        assert len(nodes) == len(np.unique(nodes))
