"""User population and background workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import rng_for
from repro.system.users import UserArchetype, UserPopulation
from repro.system.workload import DAY, BackgroundWorkloadGenerator


@pytest.fixture(scope="module")
def population():
    return UserPopulation.cori_like()


def test_ground_truth_aggressors_present(population):
    """The paper's §V-A de-anonymised users exist with the right traits."""
    agg = set(population.aggressors)
    # User-2 (HipMer), User-11 (E3SM), User-9 (FastPM), material science 6/10/14.
    assert {"User-2", "User-11", "User-9", "User-6", "User-10", "User-14"} <= agg
    hipmer = population.by_name("User-2")
    assert hipmer.io_intensity > 2e8  # heavy filesystem traffic
    assert hipmer.comm_intensity > 5e8
    fastpm = population.by_name("User-9")
    assert fastpm.pattern == "allreduce"
    assert fastpm.io_intensity >= 2e8  # burst buffers


def test_benign_users_not_aggressors(population):
    for i in range(15, 33):
        assert not population.by_name(f"User-{i}").is_aggressor


def test_population_size_realistic(population):
    assert 25 <= len(population) <= 40


def test_by_name_missing(population):
    with pytest.raises(KeyError):
        population.by_name("User-999")


def test_archetype_validation():
    with pytest.raises(ValueError):
        UserArchetype(
            "u", "w", 1.0, 1.0, "uniform", 1.0, 100.0, 0.5, (4, 8), (0.5,)
        )
    with pytest.raises(ValueError):
        UserArchetype(
            "u", "w", 1.0, 1.0, "uniform", 1.0, 100.0, 0.5, (4,), (0.7,)
        )
    with pytest.raises(ValueError):
        UserArchetype(
            "u", "w", -1.0, 1.0, "uniform", 1.0, 100.0, 0.5, (4,), (1.0,)
        )


def test_archetype_sampling(population):
    rng = rng_for("arch-sample")
    arch = population.by_name("User-2")
    sizes = {arch.sample_size(rng) for _ in range(100)}
    assert sizes <= set(arch.sizes)
    assert len(sizes) > 1
    durs = np.array([arch.sample_duration(rng) for _ in range(200)])
    assert durs.min() > 0
    # Lognormal mean parameterisation: sample mean near duration_mean.
    assert np.mean(durs) == pytest.approx(arch.duration_mean, rel=0.3)


def test_node_scale_shrinks_jobs():
    full = UserPopulation.cori_like(node_scale=1.0)
    half = UserPopulation.cori_like(node_scale=0.5)
    assert max(half.by_name("User-2").sizes) == max(full.by_name("User-2").sizes) // 2


def test_workload_generation_rates(population):
    rng = rng_for("workload")
    gen = BackgroundWorkloadGenerator(population, rng)
    reqs = gen.generate(0.0, 30 * DAY)
    expected = sum(a.jobs_per_day for a in population.archetypes) * 30
    assert len(reqs) == pytest.approx(expected, rel=0.2)
    # Sorted by submission, within the window, background-tagged.
    times = [r.submit_time for r in reqs]
    assert times == sorted(times)
    assert all(0 <= t < 30 * DAY for t in times)
    assert all(not r.is_probe for r in reqs)
    assert all(r.traffic_tag.startswith("User-") for r in reqs)


def test_workload_max_nodes_clamp(population):
    rng = rng_for("workload-clamp")
    gen = BackgroundWorkloadGenerator(population, rng, max_job_nodes=100)
    reqs = gen.generate(0.0, 10 * DAY)
    assert max(r.num_nodes for r in reqs) <= 100


def test_workload_invalid_window(population):
    gen = BackgroundWorkloadGenerator(population, rng_for("w"))
    with pytest.raises(ValueError):
        gen.generate(10.0, 10.0)


def test_workload_reproducible(population):
    a = BackgroundWorkloadGenerator(population, rng_for("repro")).generate(0, DAY)
    b = BackgroundWorkloadGenerator(population, rng_for("repro")).generate(0, DAY)
    assert [(r.user, r.submit_time, r.num_nodes) for r in a] == [
        (r.user, r.submit_time, r.num_nodes) for r in b
    ]
