"""sacct text format: hostlist compression and log round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import rng_for
from repro.system.jobs import JobRequest
from repro.system.scheduler import Scheduler
from repro.telemetry.sacct_format import (
    compress_nodelist,
    expand_nodelist,
    parse_sacct,
    write_sacct,
)


def test_compress_basic():
    assert compress_nodelist(np.array([1, 2, 3, 7])) == "nid[00001-00003,00007]"
    assert compress_nodelist(np.array([5])) == "nid[00005]"
    assert compress_nodelist(np.array([], dtype=int)) == "nid[]"
    # Unsorted input is normalised.
    assert compress_nodelist(np.array([3, 1, 2])) == "nid[00001-00003]"


def test_expand_basic():
    np.testing.assert_array_equal(
        expand_nodelist("nid[00001-00003,00007]"), [1, 2, 3, 7]
    )
    np.testing.assert_array_equal(expand_nodelist("nid[]"), [])
    with pytest.raises(ValueError):
        expand_nodelist("host[1-2]")
    with pytest.raises(ValueError):
        expand_nodelist("nid[3-1]")
    with pytest.raises(ValueError):
        expand_nodelist("nid[x]")


@given(st.lists(st.integers(0, 5000), min_size=0, max_size=80, unique=True))
@settings(max_examples=50, deadline=None)
def test_property_hostlist_roundtrip(nodes):
    arr = np.array(sorted(nodes), dtype=np.int64)
    np.testing.assert_array_equal(expand_nodelist(compress_nodelist(arr)), arr)


def test_sacct_roundtrip(tiny_topo):
    sched = Scheduler(tiny_topo, rng=rng_for("sacct-fmt"))
    res = sched.schedule(
        [
            JobRequest("User-2", "hipmer-job", 0.0, 16, 300.0),
            JobRequest("User-8", "probe-MILC-128", 10.0, 8, 200.0, is_probe=True),
        ]
    )
    text = write_sacct(res.jobs)
    assert text.startswith("JobID|User|JobName|")
    parsed = parse_sacct(text)
    assert len(parsed) == 2
    by_user = {p.user: p for p in parsed}
    orig = {j.user: j for j in res.jobs}
    for user, p in by_user.items():
        np.testing.assert_array_equal(p.nodes, orig[user].nodes)
        assert p.start == pytest.approx(orig[user].start_time, abs=1e-3)
        rec = p.to_record()
        assert rec.is_probe == orig[user].is_probe
        assert rec.num_nodes == orig[user].num_nodes


def test_parse_validation():
    assert parse_sacct("") == []
    with pytest.raises(ValueError):
        parse_sacct("Wrong|Header\n")
    header = "JobID|User|JobName|Submit|Start|End|NNodes|NodeList"
    with pytest.raises(ValueError):
        parse_sacct(header + "\n1|u|n|0|0|1|2|nid[00001]\n")  # NNodes mismatch
    with pytest.raises(ValueError):
        parse_sacct(header + "\n1|u|n|0|0|1\n")  # short row
