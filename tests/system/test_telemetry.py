"""Telemetry layers: sacct queries, mpiP profiles, AriesNCL collection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.registry import get_application
from repro.config import rng_for
from repro.network.counters import APP_COUNTERS
from repro.network.engine import CongestionEngine
from repro.network.traffic import router_alltoall_flows
from repro.system.jobs import JobRequest
from repro.system.scheduler import Scheduler
from repro.telemetry.ariesncl import AriesNCL
from repro.telemetry.mpip import BLOCKING_ROUTINES, profile_run
from repro.telemetry.sacct import SacctLog


def _req(user, t, nodes, dur, probe=False):
    return JobRequest(user, f"{user}-job", t, nodes, dur, is_probe=probe)


@pytest.fixture()
def log(tiny_topo):
    sched = Scheduler(tiny_topo, rng=rng_for("telemetry"))
    res = sched.schedule(
        [
            _req("User-8", 0.0, 16, 300.0, probe=True),
            _req("User-2", 0.0, 32, 1000.0),
            _req("User-5", 100.0, 8, 50.0),  # too small for min_nodes=16
            _req("User-9", 400.0, 32, 100.0),  # does not overlap the probe
        ]
    )
    return SacctLog(res, tiny_topo)


def test_neighborhood_users_filters(log):
    probe = log.result.probes()[0]
    # min_nodes filter excludes User-5's 8-node job; User-9 doesn't overlap.
    assert log.neighborhood_users(probe, min_nodes=16) == ["User-2"]
    assert log.neighborhood_users(probe, min_nodes=4) == ["User-2", "User-5"]


def test_neighborhood_excludes_self(log):
    probe = log.result.probes()[0]
    assert "User-8" not in log.neighborhood_users(probe, min_nodes=4)


def test_placement_features(log, tiny_topo):
    probe = log.result.probes()[0]
    feats = log.placement(probe)
    assert feats["NUM_ROUTERS"] >= 8  # 16 nodes at 2/router
    assert 1 <= feats["NUM_GROUPS"] <= tiny_topo.groups


def test_co_occurrence_matrix(log):
    probes = log.result.probes()
    m, vocab = log.co_occurrence_matrix(probes, min_nodes=4)
    assert m.shape == (1, len(vocab))
    assert vocab == ["User-2", "User-5"]
    assert (m == 1).all()


# --------------------------------------------------------------------- #
# mpiP
# --------------------------------------------------------------------- #


def test_profile_run_baseline():
    app = get_application("MILC-128")
    sm = app.step_model()
    prof = profile_run(app, sm.compute, sm.mpi)
    assert prof.total_time == pytest.approx(sm.total_mean_time)
    assert prof.mpi_fraction == pytest.approx(sm.mpi_fraction, abs=0.01)
    # Routine times sum to MPI time.
    assert sum(prof.routine_times.values()) == pytest.approx(prof.mpi_time)


def test_profile_congestion_lands_on_blocking_routines():
    app = get_application("MILC-128")
    sm = app.step_model()
    base = profile_run(app, sm.compute, sm.mpi)
    slow = profile_run(app, sm.compute, sm.mpi * 1.8)
    for name in app.routine_mix():
        if name in BLOCKING_ROUTINES:
            assert slow.routine_times[name] > 1.5 * base.routine_times[name]
        else:
            # Posting routines grow at most marginally (renormalisation).
            assert slow.routine_times[name] <= 1.2 * base.routine_times[name]


def test_profile_dominant_routines():
    app = get_application("miniVite-128")
    sm = app.step_model()
    prof = profile_run(app, sm.compute, sm.mpi)
    assert prof.dominant_routines(1) == ["Waitall"]


def test_profile_jitter_reproducible():
    app = get_application("UMT-128")
    sm = app.step_model()
    a = profile_run(app, sm.compute, sm.mpi, rng=rng_for("mpip"), jitter=0.1)
    b = profile_run(app, sm.compute, sm.mpi, rng=rng_for("mpip"), jitter=0.1)
    assert a.routine_times == b.routine_times


# --------------------------------------------------------------------- #
# AriesNCL
# --------------------------------------------------------------------- #


def test_ariesncl_collection(tiny_topo):
    engine = CongestionEngine(tiny_topo)
    rng = np.random.default_rng(3)
    nodes = rng.choice(tiny_topo.compute_nodes, size=16, replace=False)
    routers = np.unique(tiny_topo.node_router(nodes))
    flows = router_alltoall_flows(tiny_topo, nodes, 5e9)
    state = engine.solve([engine.route(flows)])

    ncl = AriesNCL(tiny_topo, routers, rng=rng_for("ncl"))
    for step in range(4):
        sc = ncl.record_step(step, state, duration=2.0)
        assert set(sc.values) == set(APP_COUNTERS)
        assert sc.duration == 2.0
    mat = ncl.matrix()
    assert mat.shape == (4, len(APP_COUNTERS))
    assert (mat >= 0).all()
    # Our own traffic shows up on processor tiles.
    pt_tot = mat[:, APP_COUNTERS.index("PT_FLIT_TOT")]
    assert (pt_tot > 0).all()


def test_ariesncl_only_sees_job_routers(tiny_topo):
    """The paper's limitation: counters only for directly attached routers."""
    engine = CongestionEngine(tiny_topo)
    rng = np.random.default_rng(8)
    ours = rng.choice(tiny_topo.compute_nodes, size=8, replace=False)
    our_routers = np.unique(tiny_topo.node_router(ours))
    other = np.setdiff1d(tiny_topo.compute_nodes, ours)[:40]
    # Traffic exists only among *other* nodes' routers.
    other_flows = router_alltoall_flows(tiny_topo, other, 1e10)
    state = engine.solve([engine.route(other_flows)])
    ncl = AriesNCL(tiny_topo, our_routers, rng=None, noise=0.0)
    sc = ncl.record_step(0, state, 1.0)
    # Other-job endpoint traffic lands on other routers' processor tiles,
    # except where jobs share a router.
    shared = np.intersect1d(our_routers, np.unique(tiny_topo.node_router(other)))
    if len(shared) == 0:
        assert sc.values["PT_FLIT_TOT"] == 0.0
    # Fabric traffic can still traverse our routers (RT side) — that is
    # exactly the signal the deviation models use.
    assert sc.values["RT_FLIT_TOT"] >= 0.0
