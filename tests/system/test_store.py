"""Telemetry store: channel invariants and windowed queries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.store import Channel, TelemetryStore, store_from_dataset


def test_channel_monotone_append():
    ch = Channel("x")
    ch.append(1.0, 10.0)
    ch.append(2.0, 20.0)
    with pytest.raises(ValueError):
        ch.append(1.5, 5.0)
    assert len(ch) == 2


def test_channel_window_and_integrate():
    ch = Channel("x")
    for t in range(10):
        ch.append(float(t), 2.0)
    t, v = ch.window(2.0, 5.0)
    np.testing.assert_array_equal(t, [2.0, 3.0, 4.0])
    assert ch.integrate(2.0, 5.0) == pytest.approx(6.0)
    assert ch.rate(0.0, 10.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        ch.rate(5.0, 5.0)


def test_channel_resample():
    ch = Channel("x")
    for t in range(12):
        ch.append(float(t), 1.0)
    edges, sums = ch.resample(0.0, 12.0, 4.0)
    np.testing.assert_array_equal(edges, [0.0, 4.0, 8.0])
    np.testing.assert_array_equal(sums, [4.0, 4.0, 4.0])
    with pytest.raises(ValueError):
        ch.resample(0, 10, 0)


def test_store_channels_and_correlation():
    store = TelemetryStore()
    rng = np.random.default_rng(0)
    base = rng.uniform(1, 2, size=100)
    for i in range(100):
        store.append_dict(float(i), {"a": base[i], "b": 3 * base[i], "c": 1.0})
    assert store.names() == ["a", "b", "c"]
    assert "a" in store and "zz" not in store
    assert store.correlate("a", "b", 0, 100, 10.0) == pytest.approx(1.0)
    assert store.correlate("a", "c", 0, 100, 10.0) == 0.0


@given(seed=st.integers(0, 50), n=st.integers(1, 50))
@settings(max_examples=25, deadline=None)
def test_property_integrate_splits(seed, n):
    rng = np.random.default_rng(seed)
    ch = Channel("x")
    times = np.sort(rng.uniform(0, 100, size=n))
    for t in times:
        ch.append(float(t), float(rng.uniform(0, 5)))
    mid = 50.0
    total = ch.integrate(0.0, 100.1)
    assert total == pytest.approx(
        ch.integrate(0.0, mid) + ch.integrate(mid, 100.1)
    )


def test_store_from_dataset(tiny_campaign):
    ds = tiny_campaign["UMT-128"]
    store = store_from_dataset(ds)
    assert "RT_RB_STL" in store
    assert "IO_PT_FLIT_TOT" in store
    assert "step_time" in store
    ch = store.channel("step_time")
    assert len(ch) == len(ds) * ds.num_steps
    # Total recorded step time matches the dataset.
    assert ch.values.sum() == pytest.approx(ds.totals.sum())
    # Stall counters co-move with step time on the shared grid.
    t0, t1 = ch.times.min(), ch.times.max() + 1
    r = store.correlate("PT_RB_STL_RQ", "step_time", t0, t1, (t1 - t0) / 40)
    assert r > 0.2
