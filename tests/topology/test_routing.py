"""Routing invariants: path validity, conservation of shares, adaptivity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TINY
from repro.topology.dragonfly import DragonflyTopology, LinkKind
from repro.topology.routing import AdaptiveRouter


def _path_is_connected(topo, flow_links, src, dst):
    """Check a flow's link multiset forms src->dst walks (per path option)."""
    s, d = topo.link_endpoints
    # Weak check suited to multi-path sets: total out-share at src equals
    # total in-share at dst, and every intermediate router is balanced.
    routers = np.zeros(topo.num_routers)
    for lid, share in flow_links:
        routers[s[lid]] -= share
        routers[d[lid]] += share
    assert routers[src] == pytest.approx(-1.0, abs=1e-9)
    assert routers[dst] == pytest.approx(1.0, abs=1e-9)
    mask = np.ones(topo.num_routers, dtype=bool)
    mask[[src, dst]] = False
    np.testing.assert_allclose(routers[mask], 0.0, atol=1e-9)


def _flow_links(incidence, flow_idx):
    sel = incidence.flow == flow_idx
    return list(zip(incidence.link[sel].tolist(), incidence.share[sel].tolist()))


@pytest.mark.parametrize(
    "case",
    ["same_router", "same_row", "same_col", "same_group_2hop", "inter_group"],
)
def test_minimal_path_flow_conservation(tiny_topo, tiny_router, case):
    t = tiny_topo
    src = t.router_id(1, 1, 1)
    if case == "same_router":
        dst = src
    elif case == "same_row":
        dst = t.router_id(1, 1, 2)
    elif case == "same_col":
        dst = t.router_id(1, 2, 1)
    elif case == "same_group_2hop":
        dst = t.router_id(1, 2, 3)
    else:
        dst = t.router_id(4, 2, 3)
    routing = tiny_router.route(np.array([src]), np.array([dst]))
    if case == "same_router":
        assert routing.local_mask[0]
        assert routing.minimal.nnz == 0
        return
    _path_is_connected(t, _flow_links(routing.minimal, 0), int(src), int(dst))


def test_valiant_path_flow_conservation(tiny_topo, tiny_router):
    t = tiny_topo
    src = int(t.router_id(0, 1, 2))
    dst = int(t.router_id(3, 2, 1))
    routing = tiny_router.route(np.array([src]), np.array([dst]))
    _path_is_connected(t, _flow_links(routing.valiant, 0), src, dst)


def test_valiant_intra_group_conservation(tiny_topo, tiny_router):
    t = tiny_topo
    src = int(t.router_id(2, 0, 0))
    dst = int(t.router_id(2, 2, 2))
    routing = tiny_router.route(np.array([src]), np.array([dst]))
    _path_is_connected(t, _flow_links(routing.valiant, 0), src, dst)


def test_minimal_uses_at_most_one_blue_hop(tiny_topo, tiny_router):
    t = tiny_topo
    src = int(t.router_id(0, 0, 0))
    dst = int(t.router_id(5, 2, 2))
    routing = tiny_router.route(np.array([src]), np.array([dst]))
    links = routing.minimal.link
    shares = routing.minimal.share
    blue = t.link_kind[links] == LinkKind.BLUE
    assert shares[blue].sum() == pytest.approx(1.0)


def test_valiant_uses_two_blue_hops_inter_group(tiny_topo, tiny_router):
    t = tiny_topo
    src = int(t.router_id(0, 0, 0))
    dst = int(t.router_id(5, 2, 2))
    routing = tiny_router.route(np.array([src]), np.array([dst]))
    links = routing.valiant.link
    shares = routing.valiant.share
    blue = t.link_kind[links] == LinkKind.BLUE
    assert shares[blue].sum() == pytest.approx(2.0)


def test_valiant_avoids_endpoint_groups_as_intermediate(tiny_topo, tiny_router):
    t = tiny_topo
    rng = np.random.default_rng(7)
    src = rng.integers(0, t.num_routers, size=200)
    dst = rng.integers(0, t.num_routers, size=200)
    sg = src // t.routers_per_group
    dg = dst // t.routers_per_group
    inter = sg != dg
    mids = tiny_router._sample_intermediate_group(sg[inter], dg[inter], 0, None)
    assert (mids != sg[inter]).all()
    assert (mids != dg[inter]).all()
    mids_rng = tiny_router._sample_intermediate_group(sg[inter], dg[inter], 0, rng)
    assert (mids_rng != sg[inter]).all()
    assert (mids_rng != dg[inter]).all()


def test_link_loads_conserve_volume(tiny_topo, tiny_router):
    """Total blue-link load equals total inter-group volume (alpha=1)."""
    t = tiny_topo
    rng = np.random.default_rng(3)
    n = 300
    src = rng.integers(0, t.num_routers, size=n)
    dst = rng.integers(0, t.num_routers, size=n)
    vol = rng.uniform(1e6, 1e8, size=n)
    routing = tiny_router.route(src, dst)
    loads = routing.link_loads(vol, alpha=1.0, num_links=t.num_links)
    blue_load = loads[t.blue_base :].sum()
    inter = (src // t.routers_per_group) != (dst // t.routers_per_group)
    assert blue_load == pytest.approx(vol[inter].sum(), rel=1e-9)


def test_alpha_blends_minimal_and_valiant(tiny_topo, tiny_router):
    t = tiny_topo
    src = np.array([int(t.router_id(0, 0, 0))])
    dst = np.array([int(t.router_id(4, 1, 1))])
    vol = np.array([1e9])
    routing = tiny_router.route(src, dst)
    full_min = routing.link_loads(vol, 1.0, t.num_links)
    full_val = routing.link_loads(vol, 0.0, t.num_links)
    half = routing.link_loads(vol, 0.5, t.num_links)
    np.testing.assert_allclose(half, 0.5 * full_min + 0.5 * full_val)


def test_flow_max_metric(tiny_topo, tiny_router):
    t = tiny_topo
    src = np.array([int(t.router_id(0, 0, 0)), int(t.router_id(1, 0, 0))])
    dst = np.array([int(t.router_id(2, 1, 1)), int(t.router_id(3, 1, 1))])
    routing = tiny_router.route(src, dst)
    metric = np.zeros(t.num_links)
    # Spike exactly one link used by flow 0's minimal path.
    lid = int(routing.minimal.link[routing.minimal.flow == 0][0])
    metric[lid] = 0.9
    mx = routing.minimal.flow_max_metric(metric, 2)
    assert mx[0] == pytest.approx(0.9)
    assert mx[1] == pytest.approx(0.0)


def test_flow_mean_metric_weighted(tiny_topo, tiny_router):
    t = tiny_topo
    src = np.array([int(t.router_id(0, 0, 0))])
    dst = np.array([int(t.router_id(0, 0, 1))])  # single green link
    routing = tiny_router.route(src, dst)
    metric = np.full(t.num_links, 0.25)
    mean = routing.minimal.flow_mean_metric(metric, 1)
    assert mean[0] == pytest.approx(0.25)


@given(seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_property_all_shares_positive_links_valid(seed):
    t = DragonflyTopology.from_preset(TINY)
    router = AdaptiveRouter(t)
    rng = np.random.default_rng(seed)
    n = 50
    src = rng.integers(0, t.num_routers, size=n)
    dst = rng.integers(0, t.num_routers, size=n)
    routing = router.route(src, dst, rng=rng)
    for inc in (routing.minimal, routing.valiant):
        assert (inc.share > 0).all()
        assert (inc.link >= 0).all() and (inc.link < t.num_links).all()
        assert (inc.flow >= 0).all() and (inc.flow < n).all()


@given(seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_property_minimal_share_sums_to_one_per_fabric_flow(seed):
    """Each non-local flow's minimal share forms a unit src->dst transfer."""
    t = DragonflyTopology.from_preset(TINY)
    router = AdaptiveRouter(t)
    rng = np.random.default_rng(seed)
    n = 30
    src = rng.integers(0, t.num_routers, size=n)
    dst = rng.integers(0, t.num_routers, size=n)
    routing = router.route(src, dst, rng=rng)
    ls, ld = t.link_endpoints
    for f in range(n):
        if routing.local_mask[f]:
            continue
        sel = routing.minimal.flow == f
        bal = np.zeros(t.num_routers)
        np.subtract.at(bal, ls[routing.minimal.link[sel]], routing.minimal.share[sel])
        np.add.at(bal, ld[routing.minimal.link[sel]], routing.minimal.share[sel])
        assert bal[src[f]] == pytest.approx(-1.0, abs=1e-9)
        assert bal[dst[f]] == pytest.approx(1.0, abs=1e-9)
