"""Dragonfly+ geometry invariants: links, node mapping, io pools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.dragonfly_plus import (
    DragonflyPlusTopology,
    PlusLinkKind,
)


@pytest.fixture(scope="module")
def plus_topo() -> DragonflyPlusTopology:
    """4 groups x (3 leaves + 2 spines) x 3 nodes = 36 nodes."""
    return DragonflyPlusTopology(
        groups=4, leaf_size=3, spine_size=2, nodes_per_router=3
    )


def test_counts(plus_topo):
    t = plus_topo
    assert t.routers_per_group == 5
    assert t.num_routers == 20
    assert t.num_nodes == 36
    assert t.num_up == t.num_down == 4 * 3 * 2
    assert t.num_global == 4 * 3 * t.global_multiplicity
    assert t.num_links == t.num_up + t.num_down + t.num_global


def test_link_kind_partition(plus_topo):
    t = plus_topo
    kinds = t.link_kind
    assert (kinds[: t.down_base] == PlusLinkKind.UP).all()
    assert (kinds[t.down_base : t.global_base] == PlusLinkKind.DOWN).all()
    assert (kinds[t.global_base :] == PlusLinkKind.GLOBAL).all()


def test_link_endpoints_valid_and_typed(plus_topo):
    t = plus_topo
    src, dst = t.link_endpoints
    assert (src >= 0).all() and (src < t.num_routers).all()
    assert (dst >= 0).all() and (dst < t.num_routers).all()
    assert (src != dst).all()
    up = slice(0, t.down_base)
    down = slice(t.down_base, t.global_base)
    glob = slice(t.global_base, t.num_links)
    # Up: leaf -> spine, same group.
    assert t.is_leaf(src[up]).all() and not t.is_leaf(dst[up]).any()
    assert (t.router_group(src[up]) == t.router_group(dst[up])).all()
    # Down: spine -> leaf, same group.
    assert not t.is_leaf(src[down]).any() and t.is_leaf(dst[down]).all()
    assert (t.router_group(src[down]) == t.router_group(dst[down])).all()
    # Global: spine -> spine, across groups.
    assert not t.is_leaf(src[glob]).any() and not t.is_leaf(dst[glob]).any()
    assert (t.router_group(src[glob]) != t.router_group(dst[glob])).all()


def test_link_ids_bijective(plus_topo):
    """Every (kind, coordinates) tuple maps to a distinct link id."""
    t = plus_topo
    seen = set()
    for g in range(t.groups):
        for leaf in range(t.leaf_size):
            for spine in range(t.spine_size):
                seen.add(int(t.up_link(g, leaf, spine)))
                seen.add(int(t.down_link(g, spine, leaf)))
    for a in range(t.groups):
        for b in range(t.groups):
            if a == b:
                continue
            for c in range(t.global_multiplicity):
                seen.add(int(t.global_link(a, b, c)))
    assert seen == set(range(t.num_links))


def test_global_gateway_owns_its_link(plus_topo):
    t = plus_topo
    src, dst = t.link_endpoints
    for a in range(t.groups):
        for b in range(t.groups):
            if a == b:
                continue
            for c in range(t.global_multiplicity):
                lid = int(t.global_link(a, b, c))
                assert src[lid] == t.global_gateway(a, b, c)
                assert dst[lid] == t.global_gateway(b, a, c)


def test_node_router_round_trip(plus_topo):
    t = plus_topo
    nodes = np.arange(t.num_nodes)
    routers = t.node_router(nodes)
    # All hosts are leaves, group-major contract holds.
    assert t.is_leaf(routers).all()
    assert (t.router_group(routers) == routers // t.routers_per_group).all()
    for r in range(t.num_routers):
        attached = t.router_nodes(r)
        if t.is_leaf(r):
            assert len(attached) == t.nodes_per_router
            assert (t.node_router(attached) == r).all()
        else:
            assert len(attached) == 0
    # Every node appears exactly once.
    all_nodes = np.concatenate(
        [t.router_nodes(r) for r in range(t.num_routers)]
    )
    assert sorted(all_nodes.tolist()) == list(range(t.num_nodes))


def test_io_pools(plus_topo):
    t = plus_topo
    assert list(t.io_routers) == [int(t.leaf_id(g, 0)) for g in range(t.io_groups)]
    assert len(t.io_nodes) == t.io_groups * t.nodes_per_router
    assert len(t.compute_nodes) + len(t.io_nodes) == t.num_nodes
    assert not np.intersect1d(t.io_nodes, t.compute_nodes).size


def test_single_group():
    t = DragonflyPlusTopology(
        groups=1, leaf_size=2, spine_size=2, nodes_per_router=2
    )
    assert t.num_global == 0
    assert t.num_links == 2 * (2 * 2)
    src, dst = t.link_endpoints
    assert len(src) == t.num_links
    assert len(t.compute_nodes) + len(t.io_nodes) == t.num_nodes == 4


def test_from_preset_capacity_parity():
    """A preset yields the same endpoint count on either topology."""
    plus = DragonflyPlusTopology.from_preset(TINY)
    flat = DragonflyTopology.from_preset(TINY)
    assert plus.num_nodes >= flat.num_nodes
    assert plus.num_nodes - flat.num_nodes < plus.leaf_size * plus.groups
    assert plus.groups == flat.groups
    assert plus.routers_per_group == flat.routers_per_group


def test_describe_and_repr(plus_topo):
    text = plus_topo.describe()
    assert "dragonfly+" in text
    assert "leaf/spine=3/2" in text
    assert repr(plus_topo)


def test_validation():
    with pytest.raises(ValueError):
        DragonflyPlusTopology(groups=0, leaf_size=2, spine_size=2)
    with pytest.raises(ValueError):
        DragonflyPlusTopology(groups=2, leaf_size=0, spine_size=2)
    with pytest.raises(ValueError):
        DragonflyPlusTopology(groups=2, leaf_size=2, spine_size=2, io_groups=3)


def test_to_networkx(plus_topo):
    pytest.importorskip("networkx")
    g = plus_topo.to_networkx()
    assert g.number_of_nodes() == plus_topo.num_routers
    assert g.number_of_edges() == plus_topo.num_links


def test_leaf_fast_path_matches_general_expansion(plus_topo, monkeypatch):
    """Leaf-only routing (the fast path) emits the exact same incidence
    triplets, in the same order, as the general per-case expansion."""
    from repro.topology.dragonfly_plus import DragonflyPlusRouter

    router = plus_topo.default_router()
    rng = np.random.default_rng(7)
    leaves = np.flatnonzero(plus_topo.is_leaf(np.arange(plus_topo.num_routers)))
    src = rng.choice(leaves, size=300)
    dst = rng.choice(leaves, size=300)
    fast = router.route(src, dst, rng=np.random.default_rng(99))

    def general_only(
        self,
        minimal,
        valiant,
        sg,
        dg,
        ls,
        ld,
        src,
        dst,
        same_group,
        inter,
        rng,
        fid,
    ):
        self._route_general(
            minimal, valiant, sg, dg, src, dst, same_group, inter, rng, fid
        )

    monkeypatch.setattr(DragonflyPlusRouter, "_route_all_leaf", general_only)
    general = router.route(src, dst, rng=np.random.default_rng(99))
    for name in ("minimal", "valiant"):
        fi, gi = getattr(fast, name), getattr(general, name)
        np.testing.assert_array_equal(fi.flow, gi.flow, err_msg=name)
        np.testing.assert_array_equal(fi.link, gi.link, err_msg=name)
        np.testing.assert_array_equal(fi.share, gi.share, err_msg=name)
    np.testing.assert_array_equal(fast.local_mask, general.local_mask)


def test_route_accepts_spine_endpoints(plus_topo):
    """Mixed leaf/spine endpoints fall back to the general expansion."""
    router = plus_topo.default_router()
    spines = np.flatnonzero(
        ~plus_topo.is_leaf(np.arange(plus_topo.num_routers))
    )
    src = np.array([spines[0], 0])
    dst = np.array([1, spines[-1]])
    routing = router.route(src, dst, rng=np.random.default_rng(3))
    assert routing.n_flows == 2
    assert routing.minimal.nnz > 0
