"""The (topology, routing) registry: names, aliases, cells, errors."""

from __future__ import annotations

import pytest

from repro.config import TINY
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.dragonfly_plus import DragonflyPlusTopology
from repro.topology.registry import (
    DEFAULT_CELL,
    DEFAULT_ROUTING,
    DEFAULT_TOPOLOGY,
    ROUTING_POLICIES,
    TOPOLOGIES,
    build_topology,
    canonical_routing,
    canonical_topology,
    cell_id,
    is_default_cell,
    parse_cell,
    resolve_cell,
    routing_spec,
)


def test_registered_topologies():
    assert set(TOPOLOGIES) == {"dragonfly", "df+"}
    assert TOPOLOGIES["dragonfly"] is DragonflyTopology
    assert TOPOLOGIES["df+"] is DragonflyPlusTopology


def test_registered_routing_policies():
    assert set(ROUTING_POLICIES) == {"ugal", "minimal", "valiant"}
    assert routing_spec("ugal").pinned_alpha is None
    assert not routing_spec("ugal").pinned
    assert routing_spec("minimal").pinned_alpha == 1.0
    assert routing_spec("valiant").pinned_alpha == 0.0
    assert routing_spec("minimal").pinned and routing_spec("valiant").pinned


@pytest.mark.parametrize(
    "alias,canonical",
    [
        ("dragonfly", "dragonfly"),
        ("df", "dragonfly"),
        ("xc", "dragonfly"),
        ("aries", "dragonfly"),
        ("DF+", "df+"),
        ("dfplus", "df+"),
        ("dragonfly+", "df+"),
        ("dragonfly_plus", "df+"),
    ],
)
def test_topology_aliases(alias, canonical):
    assert canonical_topology(alias) == canonical


@pytest.mark.parametrize(
    "alias,canonical",
    [
        ("ugal", "ugal"),
        ("adaptive", "ugal"),
        ("min", "minimal"),
        ("Minimal", "minimal"),
        ("val", "valiant"),
        ("valiant", "valiant"),
    ],
)
def test_routing_aliases(alias, canonical):
    assert canonical_routing(alias) == canonical


def test_unknown_topology_lists_registered_options():
    with pytest.raises(ValueError) as exc:
        canonical_topology("torus")
    msg = str(exc.value)
    assert "torus" in msg
    assert "dragonfly" in msg and "df+" in msg
    assert "aliases" in msg


def test_unknown_routing_lists_registered_options():
    with pytest.raises(ValueError) as exc:
        canonical_routing("ecmp")
    msg = str(exc.value)
    assert "ecmp" in msg
    assert "ugal" in msg and "minimal" in msg and "valiant" in msg


def test_build_topology():
    t = build_topology("dragonfly", TINY)
    assert isinstance(t, DragonflyTopology)
    p = build_topology("dfplus", TINY)
    assert isinstance(p, DragonflyPlusTopology)
    # Both honour the preset's group count.
    assert t.groups == p.groups == TINY.groups


def test_cells():
    assert DEFAULT_CELL == (DEFAULT_TOPOLOGY, DEFAULT_ROUTING) == (
        "dragonfly",
        "ugal",
    )
    assert resolve_cell("df", "adaptive") == DEFAULT_CELL
    assert is_default_cell(*resolve_cell("aries", "ugal"))
    assert not is_default_cell("df+", "ugal")
    assert parse_cell("df+/valiant") == ("df+", "valiant")
    assert parse_cell("dfplus/val") == ("df+", "valiant")
    assert cell_id("df+", "valiant") == "df+/valiant"


@pytest.mark.parametrize("text", ["df+", "df+/valiant/x", "/valiant", "df+/"])
def test_parse_cell_malformed(text):
    with pytest.raises(ValueError):
        parse_cell(text)


def test_every_topology_builds_and_routes():
    """Registry contract: every entry builds and self-routes out of the box."""
    import numpy as np

    for name in TOPOLOGIES:
        topo = build_topology(name, TINY)
        router = topo.default_router()
        routing = router.route(
            np.array([0]), np.array([topo.num_routers - 1])
        )
        assert routing.n_flows == 1
        assert routing.minimal.nnz > 0
