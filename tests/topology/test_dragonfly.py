"""Structural invariants of the dragonfly topology."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CORI, SMALL, TINY
from repro.topology.dragonfly import DragonflyTopology, LinkKind


def test_link_counts_partition(tiny_topo):
    t = tiny_topo
    assert t.num_links == t.num_green + t.num_black + t.num_blue
    kinds = t.link_kind
    assert (kinds[: t.num_green] == LinkKind.GREEN).all()
    assert (kinds[t.black_base : t.blue_base] == LinkKind.BLACK).all()
    assert (kinds[t.blue_base :] == LinkKind.BLUE).all()


def test_cori_preset_matches_paper():
    """Cori: 34 groups of 96 routers in a 16x6 grid (paper §II-A)."""
    t = DragonflyTopology.from_preset(CORI)
    assert t.groups == 34
    assert t.routers_per_group == 96
    assert t.row_size == 16 and t.col_size == 6
    assert t.num_routers == 34 * 96
    # Every row has 16 routers all-to-all: 16*15 directed green links.
    assert t._green_per_row == 16 * 15
    # Every column has 6 routers all-to-all: 6*5 directed black links.
    assert t._black_per_col == 6 * 5


def test_router_coordinate_roundtrip(tiny_topo):
    t = tiny_topo
    routers = np.arange(t.num_routers)
    g = routers // t.routers_per_group
    ids = t.router_id(g, t.router_row(routers), t.router_pos(routers))
    np.testing.assert_array_equal(ids, routers)


def test_node_router_mapping(tiny_topo):
    t = tiny_topo
    nodes = np.arange(t.num_nodes)
    routers = t.node_router(nodes)
    assert routers.min() == 0
    assert routers.max() == t.num_routers - 1
    counts = np.bincount(routers)
    assert (counts == t.nodes_per_router).all()
    # router_nodes is the inverse.
    for r in (0, t.num_routers // 2, t.num_routers - 1):
        for n in t.router_nodes(r):
            assert t.node_router(int(n)) == r


def test_link_endpoints_consistent_with_kind(tiny_topo):
    t = tiny_topo
    src, dst = t.link_endpoints
    kind = t.link_kind
    sg = src // t.routers_per_group
    dg = dst // t.routers_per_group
    # Green: same group, same row, different pos.
    green = kind == LinkKind.GREEN
    assert (sg[green] == dg[green]).all()
    assert (t.router_row(src[green]) == t.router_row(dst[green])).all()
    assert (t.router_pos(src[green]) != t.router_pos(dst[green])).all()
    # Black: same group, same pos, different row.
    black = kind == LinkKind.BLACK
    assert (sg[black] == dg[black]).all()
    assert (t.router_pos(src[black]) == t.router_pos(dst[black])).all()
    assert (t.router_row(src[black]) != t.router_row(dst[black])).all()
    # Blue: different groups.
    blue = kind == LinkKind.BLUE
    assert (sg[blue] != dg[blue]).all()


def test_no_duplicate_intra_group_links(tiny_topo):
    t = tiny_topo
    src, dst = t.link_endpoints
    intra = t.link_kind != LinkKind.BLUE
    pairs = src[intra] * t.num_routers + dst[intra]
    assert len(np.unique(pairs)) == intra.sum()


def test_green_black_link_id_arithmetic(tiny_topo):
    t = tiny_topo
    src, dst = t.link_endpoints
    # Round-trip a sample of green links through the arithmetic lookup.
    for lid in range(0, t.num_green, 7):
        s, d = int(src[lid]), int(dst[lid])
        got = t.green_link(
            s // t.routers_per_group,
            t.router_row(s),
            t.router_pos(s),
            t.router_pos(d),
        )
        assert int(got) == lid
    for lid in range(t.black_base, t.blue_base, 5):
        s, d = int(src[lid]), int(dst[lid])
        got = t.black_link(
            s // t.routers_per_group,
            t.router_pos(s),
            t.router_row(s),
            t.router_row(d),
        )
        assert int(got) == lid


def test_blue_links_pair_all_groups(tiny_topo):
    t = tiny_topo
    src, dst = t.link_endpoints
    blue = t.link_kind == LinkKind.BLUE
    sg = src[blue] // t.routers_per_group
    dg = dst[blue] // t.routers_per_group
    pairs = set(zip(sg.tolist(), dg.tolist()))
    expect = {(a, b) for a in range(t.groups) for b in range(t.groups) if a != b}
    assert pairs == expect


def test_blue_gateway_owns_blue_link(tiny_topo):
    t = tiny_topo
    src, dst = t.link_endpoints
    for a in range(t.groups):
        for b in range(t.groups):
            if a == b:
                continue
            for c in range(min(2, t.global_multiplicity)):
                lid = int(t.blue_link(a, b, c))
                assert int(src[lid]) == int(t.blue_gateway(a, b, c))
                assert int(dst[lid]) == int(t.blue_gateway(b, a, c))


def test_io_routers_in_io_groups(tiny_topo):
    t = tiny_topo
    groups = t.io_routers // t.routers_per_group
    assert (groups < t.io_groups).all()
    assert (t.router_pos(t.io_routers) == 0).all()
    # compute + io nodes partition all nodes.
    assert len(t.compute_nodes) + len(t.io_nodes) == t.num_nodes
    assert len(np.intersect1d(t.compute_nodes, t.io_nodes)) == 0


def test_router_graph_is_strongly_connected(tiny_topo):
    import networkx as nx

    g = tiny_topo.to_networkx()
    assert nx.is_strongly_connected(nx.DiGraph(g))


def test_network_diameter_is_low(tiny_topo):
    """Dragonfly's raison d'etre: diameter <= 5 router hops (2 intra + blue
    + 2 intra)."""
    import networkx as nx

    g = nx.DiGraph(tiny_topo.to_networkx())
    # Sample eccentricities (full diameter is slow even at tiny scale).
    lengths = nx.single_source_shortest_path_length(g, 0)
    assert max(lengths.values()) <= 5


@given(
    groups=st.integers(2, 8),
    rows=st.integers(2, 6),
    cols=st.integers(2, 5),
    npr=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_property_link_count_formula(groups, rows, cols, npr):
    t = DragonflyTopology(groups, rows, cols, nodes_per_router=npr)
    rpg = rows * cols
    assert t.num_green == groups * cols * rows * (rows - 1)
    assert t.num_black == groups * rows * cols * (cols - 1)
    assert t.num_blue == groups * (groups - 1) * t.global_multiplicity
    assert t.num_nodes == groups * rpg * npr
    src, dst = t.link_endpoints
    assert len(src) == t.num_links
    assert (src != dst).all()


@given(st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_property_pair_offset_bijection(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 20))
    i = rng.integers(0, n, size=50)
    j = rng.integers(0, n, size=50)
    mask = i != j
    offs = DragonflyTopology._pair_offset(i[mask], j[mask], n)
    assert (offs >= 0).all() and (offs < n * (n - 1) // 1).all()
    # Offsets are unique per (i, j).
    key = i[mask] * n + j[mask]
    uniq_pairs = len(np.unique(key))
    combined = i[mask] * n * n + offs
    assert len(np.unique(combined)) == uniq_pairs


def test_invalid_configs_raise():
    with pytest.raises(ValueError):
        DragonflyTopology(1, 4, 3)
    with pytest.raises(ValueError):
        DragonflyTopology(4, 1, 3)
    with pytest.raises(ValueError):
        DragonflyTopology(4, 4, 3, nodes_per_router=0)
    with pytest.raises(ValueError):
        DragonflyTopology(4, 4, 3, io_groups=9)


def test_describe_mentions_scale():
    t = DragonflyTopology.from_preset(SMALL)
    s = t.describe()
    assert "groups=15" in s and "nodes=2880" in s


def test_preset_lookup_roundtrip():
    assert DragonflyTopology.from_preset("tiny").groups == TINY.groups
