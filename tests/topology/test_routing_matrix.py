"""Routing edge cases across every registered (topology, policy) cell.

The congestion engine must behave for each registered policy on each
registered topology when fed degenerate traffic: flows inside one group,
self-flows (src == dst), a single-group machine (no global links), and
zero-volume intervals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY
from repro.network.engine import CongestionEngine, RoutedTraffic
from repro.network.traffic import FlowSet
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.dragonfly_plus import DragonflyPlusTopology
from repro.topology.registry import ROUTING_POLICIES, TOPOLOGIES, build_topology

POLICIES = sorted(ROUTING_POLICIES)
TOPOLOGY_NAMES = sorted(TOPOLOGIES)


def _tiny(name):
    return build_topology(name, TINY)


def _degenerate(name):
    """The smallest legal machine where Valiant has no third group.

    A dragonfly refuses a single group outright, so its edge case is the
    2-group machine; dragonfly+ additionally supports one group (no
    global links at all).
    """
    if name == "dragonfly":
        return DragonflyTopology(groups=2, row_size=2, col_size=2, nodes_per_router=2)
    return DragonflyPlusTopology(
        groups=1, leaf_size=3, spine_size=2, nodes_per_router=2
    )


def _conserved(topo, inc, n_flows, src, dst, local_mask):
    """Each fabric flow's incidence forms a unit src->dst transfer."""
    ls, ld = topo.link_endpoints
    for f in range(n_flows):
        sel = inc.flow == f
        bal = np.zeros(topo.num_routers)
        np.subtract.at(bal, ls[inc.link[sel]], inc.share[sel])
        np.add.at(bal, ld[inc.link[sel]], inc.share[sel])
        if local_mask[f]:
            np.testing.assert_allclose(bal, 0.0, atol=1e-9)
            continue
        assert bal[src[f]] == pytest.approx(-1.0, abs=1e-9)
        assert bal[dst[f]] == pytest.approx(1.0, abs=1e-9)
        mask = np.ones(topo.num_routers, dtype=bool)
        mask[[src[f], dst[f]]] = False
        np.testing.assert_allclose(bal[mask], 0.0, atol=1e-9)


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_intra_group_and_self_flows_conserve(name):
    topo = _tiny(name)
    router = topo.default_router()
    r = topo.routers_per_group
    # Group 1: self-flow, two distinct intra-group pairs.
    src = np.array([r + 1, r + 1, r + 0])
    dst = np.array([r + 1, r + 2, r + (r - 1)])
    routing = router.route(src, dst)
    assert routing.local_mask.tolist() == [True, False, False]
    # Global/blue links occupy the id tail on both topologies.
    global_base = getattr(topo, "blue_base", None) or topo.global_base
    for inc in (routing.minimal, routing.valiant):
        _conserved(topo, inc, 3, src, dst, routing.local_mask)
        # Intra-group traffic never touches a global link.
        assert (inc.link < global_base).all()


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_degenerate_topology_routes(name):
    topo = _degenerate(name)
    router = topo.default_router()
    rng = np.random.default_rng(11)
    src = rng.integers(0, topo.num_routers, size=40)
    dst = rng.integers(0, topo.num_routers, size=40)
    routing = router.route(src, dst)
    for inc in (routing.minimal, routing.valiant):
        assert (inc.link >= 0).all() and (inc.link < topo.num_links).all()
        assert (inc.share > 0).all()
        _conserved(topo, inc, 40, src, dst, routing.local_mask)


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
@pytest.mark.parametrize("policy", POLICIES)
def test_engine_solves_each_policy(name, policy):
    topo = _tiny(name)
    eng = CongestionEngine(topo, policy=policy)
    rng = np.random.default_rng(5)
    n = 60
    flows = FlowSet(
        src=rng.integers(0, topo.num_routers, size=n),
        dst=rng.integers(0, topo.num_routers, size=n),
        volume=rng.uniform(1e6, 5e8, size=n),
    )
    routing = eng.router.route(flows.src, flows.dst)
    state = eng.solve([RoutedTraffic(flows, routing)])
    assert np.isfinite(state.link_loads).all()
    assert (state.link_loads >= 0).all()
    assert np.isfinite(state.link_util).all()


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
@pytest.mark.parametrize("policy", POLICIES)
def test_engine_zero_traffic(name, policy):
    """A zero-volume interval solves to an idle network under any policy."""
    topo = _tiny(name)
    eng = CongestionEngine(topo, policy=policy)
    # Empty flow set.
    empty = FlowSet(
        src=np.empty(0, dtype=np.int64),
        dst=np.empty(0, dtype=np.int64),
        volume=np.empty(0),
    )
    routing = eng.router.route(empty.src, empty.dst)
    state = eng.solve([RoutedTraffic(empty, routing)])
    np.testing.assert_allclose(state.link_loads, 0.0)
    # Non-empty geometry, all volumes zero.
    src = np.array([0, 1])
    dst = np.array([topo.num_routers - 1, 1])
    zero = FlowSet(src=src, dst=dst, volume=np.zeros(2))
    routing = eng.router.route(src, dst)
    state = eng.solve([RoutedTraffic(zero, routing)])
    np.testing.assert_allclose(state.link_loads, 0.0)


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_pinned_policies_bypass_ugal_clip(name):
    """minimal/valiant alphas sit outside the UGAL clip band [0.25, 0.98]."""
    topo = _tiny(name)
    assert CongestionEngine(topo, policy="minimal").alpha0 == 1.0
    assert CongestionEngine(topo, policy="valiant").alpha0 == 0.0
    assert CongestionEngine(topo, policy="minimal").pinned
    assert CongestionEngine(topo, policy="valiant").pinned
    assert not CongestionEngine(topo, policy="ugal").pinned


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_minimal_and_valiant_load_distinct_links(name):
    """On >2 groups the two pinned policies load different global links."""
    topo = _tiny(name)
    router = topo.default_router()
    src = np.array([1])
    dst = np.array([3 * topo.routers_per_group + 1])
    flows = FlowSet(src=src, dst=dst, volume=np.array([1e9]))
    routing = router.route(src, dst)
    loads_min = routing.link_loads(flows.volume, 1.0, topo.num_links)
    loads_val = routing.link_loads(flows.volume, 0.0, topo.num_links)
    assert not np.allclose(loads_min, loads_val)
    # Valiant pays extra hops: strictly more total link-bytes.
    assert loads_val.sum() > loads_min.sum()
