"""Allocation policies and placement features (NUM_ROUTERS / NUM_GROUPS)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TINY, rng_for
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.placement import (
    AllocationPolicy,
    allocate,
    job_routers,
    num_groups_feature,
    num_routers_feature,
    placement_features,
)


def test_contiguous_allocation_minimises_fragmentation(tiny_topo):
    free = tiny_topo.compute_nodes
    nodes = allocate(tiny_topo, free, 8, AllocationPolicy.CONTIGUOUS)
    assert len(nodes) == 8
    # 8 nodes at 2 nodes/router -> exactly 4 routers when contiguous.
    assert num_routers_feature(tiny_topo, nodes) == 4
    assert num_groups_feature(tiny_topo, nodes) == 1


def test_random_allocation_fragments(tiny_topo):
    rng = rng_for("placement-test")
    free = tiny_topo.compute_nodes
    nodes = allocate(tiny_topo, free, 16, AllocationPolicy.RANDOM, rng)
    assert len(nodes) == 16
    assert len(np.unique(nodes)) == 16
    # Random placement across 144 nodes almost surely spans >1 group.
    assert num_groups_feature(tiny_topo, nodes) > 1
    assert num_routers_feature(tiny_topo, nodes) >= 8


def test_clustered_allocation_spans_few_groups(tiny_topo):
    rng = rng_for("placement-test-2")
    free = tiny_topo.compute_nodes
    nodes = allocate(tiny_topo, free, 20, AllocationPolicy.CLUSTERED, rng)
    assert len(nodes) == 20
    # 20 nodes fit in one group (12 routers x 2 nodes = 24) but clustered
    # allocation allows minor spill; it must beat random fragmentation.
    assert num_groups_feature(tiny_topo, nodes) <= 2


def test_allocation_respects_free_list(tiny_topo):
    rng = rng_for("placement-test-3")
    free = tiny_topo.compute_nodes[::3]
    for policy in AllocationPolicy:
        nodes = allocate(tiny_topo, free, 5, policy, rng)
        assert np.isin(nodes, free).all()


def test_allocation_errors(tiny_topo):
    free = tiny_topo.compute_nodes[:4]
    with pytest.raises(ValueError):
        allocate(tiny_topo, free, 5, AllocationPolicy.CONTIGUOUS)
    with pytest.raises(ValueError):
        allocate(tiny_topo, free, 0, AllocationPolicy.CONTIGUOUS)


def test_placement_features_dict(tiny_topo):
    nodes = tiny_topo.compute_nodes[:6]
    feats = placement_features(tiny_topo, nodes)
    assert set(feats) == {"NUM_ROUTERS", "NUM_GROUPS"}
    assert feats["NUM_ROUTERS"] == num_routers_feature(tiny_topo, nodes)
    assert feats["NUM_GROUPS"] == num_groups_feature(tiny_topo, nodes)


def test_job_routers_sorted_unique(tiny_topo):
    nodes = np.array([5, 4, 1, 0])
    routers = job_routers(tiny_topo, nodes)
    assert (np.diff(routers) > 0).all()


@given(size=st.integers(1, 60), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_property_features_bounded(size, seed):
    topo = DragonflyTopology.from_preset(TINY)
    rng = np.random.default_rng(seed)
    nodes = allocate(topo, topo.compute_nodes, size, AllocationPolicy.RANDOM, rng)
    nr = num_routers_feature(topo, nodes)
    ng = num_groups_feature(topo, nodes)
    assert 1 <= ng <= topo.groups
    assert ng <= nr <= min(size, topo.num_routers)
    # Pigeonhole lower bound.
    assert nr >= int(np.ceil(size / topo.nodes_per_router))
