"""ASCII topology rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.render import (
    render_group,
    render_group_connectivity,
    render_utilisation,
)


def test_render_group(tiny_topo):
    text = render_group(tiny_topo, 0)
    assert "group 0" in text
    # Group 0 hosts io routers in column 0.
    assert "io" in text
    assert "blue links" in text
    with pytest.raises(ValueError):
        render_group(tiny_topo, 99)


def test_render_group_compute_only(tiny_topo):
    text = render_group(tiny_topo, 2)
    # Non-io groups have only compute routers.
    assert "io0" not in text


def test_render_connectivity(tiny_topo):
    text = render_group_connectivity(tiny_topo)
    assert f"{tiny_topo.groups} groups" in text
    assert " x " in text and " . " in text


def test_render_utilisation(tiny_topo):
    loads = np.zeros(tiny_topo.num_links)
    loads[: tiny_topo.num_green] = 0.5 * tiny_topo.link_capacity[: tiny_topo.num_green]
    text = render_utilisation(tiny_topo, loads)
    assert "green" in text and "blue" in text
    assert "mean=0.500" in text
