"""ASCII topology rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.render import (
    render_group,
    render_group_connectivity,
    render_utilisation,
)


def test_render_group(tiny_topo):
    text = render_group(tiny_topo, 0)
    assert "group 0" in text
    # Group 0 hosts io routers in column 0.
    assert "io" in text
    assert "blue links" in text
    with pytest.raises(ValueError):
        render_group(tiny_topo, 99)


def test_render_group_compute_only(tiny_topo):
    text = render_group(tiny_topo, 2)
    # Non-io groups have only compute routers.
    assert "io0" not in text


def test_render_connectivity(tiny_topo):
    text = render_group_connectivity(tiny_topo)
    assert f"{tiny_topo.groups} groups" in text
    assert " x " in text and " . " in text


def test_render_utilisation(tiny_topo):
    loads = np.zeros(tiny_topo.num_links)
    loads[: tiny_topo.num_green] = 0.5 * tiny_topo.link_capacity[: tiny_topo.num_green]
    text = render_utilisation(tiny_topo, loads)
    assert "green" in text and "blue" in text
    assert "mean=0.500" in text


def test_render_plus_group():
    from repro.topology.dragonfly_plus import DragonflyPlusTopology

    t = DragonflyPlusTopology(groups=3, leaf_size=3, spine_size=2, nodes_per_router=2)
    text = render_group(t, 0)
    assert "3 leaves x 2 spines" in text
    assert "io" in text  # leaf 0 of group 0 hosts I/O
    assert "global links" in text
    assert "io" not in render_group(t, 2).split("\n", 1)[1]
    with pytest.raises(ValueError):
        render_group(t, 3)


def test_render_plus_connectivity_and_utilisation():
    import numpy as np

    from repro.topology.dragonfly_plus import DragonflyPlusTopology

    t = DragonflyPlusTopology(groups=3, leaf_size=3, spine_size=2, nodes_per_router=2)
    conn = render_group_connectivity(t)
    assert "3 groups" in conn
    loads = np.zeros(t.num_links)
    loads[: t.num_up] = 0.5 * t.link_capacity[: t.num_up]
    text = render_utilisation(t, loads)
    assert "up" in text and "down" in text and "global" in text
    assert "mean=0.500" in text


def test_render_unknown_topology_degrades():
    class Weird:
        groups = 1

        def describe(self):
            return "weird(1)"

    text = render_group(Weird(), 0)
    assert "not supported" in text
    assert "weird(1)" in text
