"""Topology metrics vs dragonfly theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BLUE_LINK_BW, CORI
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.metrics import (
    bisection_bandwidth,
    link_load_balance,
    measured_diameter,
    path_diversity,
    per_node_bisection,
    router_radix,
    theoretical_diameter,
)


def test_diameter_matches_theory(tiny_topo):
    assert theoretical_diameter(tiny_topo) == 5
    assert measured_diameter(tiny_topo, samples=72) <= 5
    # Dragonfly beats any same-size ring/mesh by construction.
    assert measured_diameter(tiny_topo, samples=72) >= 2


def test_cori_shape_radix():
    """Aries is a 48-port router: 15 green + 5 black + blue + 8 NIC."""
    t = DragonflyTopology.from_preset(CORI)
    radix = router_radix(t)
    assert radix["green"] == pytest.approx(15.0)
    assert radix["black"] == pytest.approx(5.0)
    assert radix["blue"] > 0
    assert radix["nic"] == 4.0


def test_bisection_bandwidth_formula(tiny_topo):
    g = tiny_topo.groups
    expect = 2 * (g // 2) * (g - g // 2) * tiny_topo.global_multiplicity
    assert bisection_bandwidth(tiny_topo) == pytest.approx(expect * BLUE_LINK_BW)
    assert per_node_bisection(tiny_topo) == pytest.approx(
        bisection_bandwidth(tiny_topo) / tiny_topo.num_nodes
    )


def test_path_diversity_positive(tiny_topo):
    assert path_diversity(tiny_topo) == 4 * tiny_topo.global_multiplicity


def test_link_load_balance():
    cap = np.ones(4)
    assert link_load_balance(np.zeros(4), cap) == 1.0
    assert link_load_balance(np.array([1.0, 1.0, 0, 0]), cap) == pytest.approx(1.0)
    assert link_load_balance(np.array([3.0, 1.0, 0, 0]), cap) == pytest.approx(1.5)


def test_valiant_spreads_adversarial_pattern(tiny_topo):
    """The Valiant rationale: for a group-pair hotspot (the dragonfly's
    adversarial pattern), non-minimal routing lowers the peak link
    utilisation that minimal routing concentrates on the few direct blue
    links."""
    from repro.network.traffic import FlowSet
    from repro.topology.routing import AdaptiveRouter

    # Scarce global links (multiplicity 2) make the direct channels the
    # bottleneck, as on real systems where group pairs share few cables.
    t = DragonflyTopology(6, 4, 3, nodes_per_router=2, global_multiplicity=2)
    router = AdaptiveRouter(t)
    # All routers of group 0 send to the matching routers of group 3.
    src = np.arange(t.routers_per_group)
    dst = src + 3 * t.routers_per_group
    flows = FlowSet(src, dst, np.full(len(src), 1e9))
    routing = router.route(flows.src, flows.dst, rng=np.random.default_rng(0))
    minimal_only = routing.link_loads(flows.volume, 1.0, t.num_links)
    valiant_only = routing.link_loads(flows.volume, 0.0, t.num_links)
    # The contested resource is the group-pair's blue links: minimal
    # routing funnels everything over the direct 0->3 channels; Valiant
    # detours over other groups' links.
    peak_min = (minimal_only / t.link_capacity)[t.blue_base :].max()
    peak_val = (valiant_only / t.link_capacity)[t.blue_base :].max()
    assert peak_val < peak_min
