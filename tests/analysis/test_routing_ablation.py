"""Routing-policy ablation: adaptive routing mitigates interference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.routing_ablation import (
    adversarial_background,
    render_ablation,
    routing_ablation,
)
from repro.network.engine import CongestionEngine, RoutingPolicy
from repro.network.traffic import FlowSet


def test_policy_pins_alpha(tiny_topo):
    src = np.array([0])
    dst = np.array([int(tiny_topo.router_id(3, 1, 1))])
    flows = FlowSet(src, dst, np.array([1e9]))
    for policy, expect in (
        (RoutingPolicy.MINIMAL, 1.0),
        (RoutingPolicy.VALIANT, 0.0),
    ):
        engine = CongestionEngine(tiny_topo, policy=policy)
        state = engine.solve([engine.route(flows)])
        assert state.metrics[0].alpha[0] == pytest.approx(expect)


def test_adaptive_unchanged_default(tiny_topo):
    engine = CongestionEngine(tiny_topo)
    assert engine.policy is RoutingPolicy.ADAPTIVE
    assert engine.alpha0 == pytest.approx(0.85)


def test_adversarial_background_shape(tiny_topo):
    bg = adversarial_background(tiny_topo, 1e11)
    assert bg.total_volume == pytest.approx(1e11)
    sg = bg.src // tiny_topo.routers_per_group
    dg = bg.dst // tiny_topo.routers_per_group
    assert (sg == 0).all() and (dg == 1).all()


def test_ablation_adversary_rescued_by_nonminimal(tiny_topo):
    """The textbook dragonfly result: for the hotspot traffic itself,
    Valiant/adaptive routing beats minimal once the direct links
    saturate."""
    results = routing_ablation(
        tiny_topo,
        probe_nodes=24,
        background_gbps=(0.0, 400.0),
        seed=3,
    )
    assert len(results) == 2
    quiet, loud = results
    # Idle background: minimal is never worse for the probe (fewer hops).
    assert quiet.probe_slowdown["minimal"] <= quiet.probe_slowdown["valiant"] + 1e-6
    # Heavy hotspot: its own traffic prefers non-minimal routing.
    assert (
        min(loud.adversary_slowdown["adaptive"], loud.adversary_slowdown["valiant"])
        <= loud.adversary_slowdown["minimal"] + 1e-9
    )
    # And congestion hurts the bystander in absolute terms.
    assert loud.probe_slowdown["minimal"] >= quiet.probe_slowdown["minimal"]
    text = render_ablation(results)
    assert "adaptive" in text and "adversary" in text


def test_ablation_monotone_in_background(tiny_topo):
    results = routing_ablation(
        tiny_topo, probe_nodes=24, background_gbps=(0.0, 100.0, 600.0), seed=4
    )
    adaptive = [r.probe_slowdown["adaptive"] for r in results]
    assert adaptive[0] <= adaptive[-1] + 1e-9
