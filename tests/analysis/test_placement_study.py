"""Placement-policy study."""

from __future__ import annotations

import pytest

from repro.analysis.placement_study import (
    PlacementStudy,
    PlacementTrial,
    placement_study,
    render_placement_study,
)


@pytest.fixture(scope="module")
def study(tiny_topo):
    return placement_study(
        tiny_topo,
        probe_nodes=16,
        probe_bytes=10e9,
        background_nodes=60,
        background_bytes_per_node=8e8,
        trials_per_policy=3,
        seed=1,
    )


def test_all_policies_tried(study):
    policies = {t.policy for t in study.trials}
    assert policies == {"contiguous", "random", "clustered"}
    assert len(study.trials) == 9


def test_fragmentation_visible_in_features(study):
    agg = study.by_policy()
    # Random placement spans more groups and routers than contiguous.
    assert agg["random"]["mean_groups"] > agg["contiguous"]["mean_groups"]
    assert agg["random"]["mean_routers"] >= agg["contiguous"]["mean_routers"]


def test_slowdowns_positive(study):
    for t in study.trials:
        assert t.fabric_slowdown >= 1.0
        assert t.endpoint_slowdown >= 1.0


def test_fragmentation_cost_defined(study):
    # Sign depends on the traffic mix; the metric just has to be finite
    # and computed from both policies.
    cost = study.fragmentation_cost()
    assert isinstance(cost, float)
    assert abs(cost) < 5.0


def test_fragmentation_cost_degenerate():
    s = PlacementStudy(
        trials=[PlacementTrial("random", 8, 2, 1.2, 1.1)]
    )
    assert s.fragmentation_cost() == 0.0


def test_render(study):
    text = render_placement_study(study)
    assert "fragmentation cost" in text
    assert "contiguous" in text and "random" in text
