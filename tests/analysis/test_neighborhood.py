"""Neighbourhood analysis on synthetic and campaign data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.neighborhood import (
    analyze_neighborhood,
    correlated_users_table,
    recovery_rate,
)
from repro.campaign.datasets import RunDataset, RunRecord


def _mk_run(i, total, neighborhood, t=4):
    step = np.full(t, total / t)
    return RunRecord(
        run_index=i,
        start_time=1000.0 * i,
        step_times=step,
        compute_times=step * 0.3,
        mpi_times=step * 0.7,
        counters=np.ones((t, 13)),
        ldms=np.ones((t, 8)),
        num_routers=8,
        num_groups=2,
        neighborhood=neighborhood,
        routine_times={"Wait": 1.0},
    )


@pytest.fixture()
def synthetic_dataset():
    """User-X present => slow run; User-Z is uninformative noise."""
    rng = np.random.default_rng(0)
    runs = []
    for i in range(60):
        x_present = bool(rng.random() < 0.5)
        nb = []
        if x_present:
            nb.append("User-X")
        if rng.random() < 0.5:
            nb.append("User-Z")
        total = 100.0 + (40.0 if x_present else 0.0) + rng.normal(0, 3)
        runs.append(_mk_run(i, total, nb))
    return RunDataset(key="SYN-128", runs=runs)


def test_analysis_ranks_aggressor_first(synthetic_dataset):
    res = analyze_neighborhood(synthetic_dataset)
    ranked = res.ranked_users()
    assert ranked[0][0] == "User-X"
    assert ranked[0][1] > ranked[-1][1]
    assert 0 < res.optimal_fraction < 1


def test_orientation_filters_beneficial_users(synthetic_dataset):
    res = analyze_neighborhood(synthetic_dataset)
    ix = res.users.index("User-X")
    assert res.presence_slowdown_corr[ix] < 0  # presence => non-optimal
    top = res.top_users(2)
    assert "User-X" in top


def test_top_users_excludes_positive_correlates():
    # A user whose presence coincides with *fast* runs must not be blamed.
    rng = np.random.default_rng(1)
    runs = []
    for i in range(60):
        lucky = bool(rng.random() < 0.5)
        total = 100.0 - (30.0 if lucky else 0.0) + rng.normal(0, 2)
        runs.append(_mk_run(i, total, ["User-L"] if lucky else []))
    ds = RunDataset(key="SYN", runs=runs)
    res = analyze_neighborhood(ds)
    assert res.top_users(3) == []


def test_empty_dataset_raises():
    with pytest.raises(ValueError):
        analyze_neighborhood(RunDataset(key="EMPTY"))


def test_no_neighbors_handled():
    runs = [_mk_run(i, 100.0 + i, []) for i in range(10)]
    res = analyze_neighborhood(RunDataset(key="LONELY", runs=runs))
    assert res.users == []
    assert res.top_users(3) == []


def test_table3_on_campaign(tiny_campaign):
    camp = tiny_campaign
    table = correlated_users_table(camp, top_k=9, min_lists=2)
    keys = set(table)
    assert all("-long" not in k for k in keys)
    blamed = {u for users in table.values() for u in users}
    # Every blamed user appears in >= 2 lists by construction.
    for u in blamed:
        assert sum(u in users for users in table.values()) >= 2


def test_recovery_rate_bounds():
    table = {"A": ["User-2", "User-99"], "B": ["User-2"]}
    rate = recovery_rate(table, ["User-2"])
    assert rate == pytest.approx(0.5)
    assert recovery_rate({"A": []}, ["User-2"]) == 0.0
    # Probe self-interference counts as a true positive.
    assert recovery_rate({"A": ["User-8"]}, []) == 1.0
