"""Baseline forecasters and the scheduling what-if extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.baselines import (
    CarryForwardForecaster,
    GBRForecaster,
    compare_forecasters,
)
from repro.analysis.whatif import scheduling_whatif
from repro.campaign.datasets import Campaign, RunDataset, RunRecord
from repro.ml.attention import AttentionForecaster
from repro.ml.metrics import r2_score


def _fast_attention(seed=0):
    return AttentionForecaster(d_model=8, hidden=16, epochs=50, seed=seed)


def test_gbr_forecaster_learns_window_signal():
    rng = np.random.default_rng(0)
    n, m, h = 500, 4, 3
    x = rng.normal(size=(n, m, h))
    y = 3 * x[:, -1, 1] + 0.1 * rng.normal(size=n)
    model = GBRForecaster(seed=0).fit(x[:400], y[:400])
    assert r2_score(y[400:], model.predict(x[400:])) > 0.7
    with pytest.raises(ValueError):
        GBRForecaster().fit(np.ones((5, 4)), np.ones(5))


def test_carry_forward_scales():
    rng = np.random.default_rng(1)
    x = rng.uniform(1, 2, size=(200, 3, 2))
    y = 5 * x[:, :, 0].mean(axis=1)
    cf = CarryForwardForecaster(channel=0).fit(x, y)
    np.testing.assert_allclose(cf.predict(x), y, rtol=1e-6)
    last = CarryForwardForecaster(channel=0, last_only=True).fit(x, y)
    assert last.predict(x).shape == (200,)
    dumb = CarryForwardForecaster(channel=None).fit(x, y)
    np.testing.assert_allclose(dumb.predict(x), y.mean())


def test_compare_forecasters_on_synthetic():
    from tests.analysis.test_deviation_forecasting import _synthetic_dataset

    ds = _synthetic_dataset(n=20, t=20)
    cmp = compare_forecasters(
        ds, m=4, k=4, n_splits=2, attention_factory=_fast_attention
    )
    assert set(cmp.mapes) == {"attention", "gbr", "ridge", "mean-target"}
    assert all(v > 0 for v in cmp.mapes.values())
    # Learned models beat the mean-target strawman on learnable data.
    assert min(cmp.mapes["attention"], cmp.mapes["gbr"]) < cmp.mapes["mean-target"]
    assert cmp.winner() in cmp.mapes


# --------------------------------------------------------------------- #
# what-if
# --------------------------------------------------------------------- #


def _mk_run(i, total, neighborhood, t=4):
    step = np.full(t, total / t)
    return RunRecord(
        run_index=i,
        start_time=500.0 * i,
        step_times=step,
        compute_times=step * 0.3,
        mpi_times=step * 0.7,
        counters=np.ones((t, 13)),
        ldms=np.ones((t, 8)),
        num_routers=8,
        num_groups=2,
        neighborhood=neighborhood,
        routine_times={"Wait": 1.0},
    )


def test_whatif_quantifies_aggressor_cost():
    rng = np.random.default_rng(2)
    datasets = {}
    for key in ("A-128", "B-128"):
        runs = []
        for i in range(60):
            hot = bool(rng.random() < 0.4)
            total = 100.0 + (50.0 if hot else 0.0) + rng.normal(0, 2)
            runs.append(_mk_run(i, total, ["User-2"] if hot else []))
        datasets[key] = RunDataset(key=key, runs=runs)
    camp = Campaign(datasets=datasets)
    results = scheduling_whatif(camp, dataset_keys=list(datasets))
    assert len(results) == 2
    for r in results:
        assert r.runs_overlapped + r.runs_clean == 60
        assert r.mean_time_overlapped > r.mean_time_clean
        assert 0.2 < r.saving_fraction < 0.5  # ~50/150
        assert 0.0 < r.net_saving_fraction < r.saving_fraction


def test_whatif_degenerate_partition():
    runs = [_mk_run(i, 100.0, []) for i in range(10)]
    camp = Campaign(datasets={"X-128": RunDataset(key="X-128", runs=runs)})
    results = scheduling_whatif(camp, dataset_keys=["X-128"])
    assert results[0].saving_fraction == 0.0
    assert results[0].net_saving_fraction == 0.0


def test_whatif_on_campaign(tiny_campaign):
    results = scheduling_whatif(tiny_campaign)
    assert len(results) >= 4
    for r in results:
        assert 0.0 <= r.net_saving_fraction <= 1.0
