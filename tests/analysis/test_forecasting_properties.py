"""Property-based tests for the forecasting window machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.forecasting import build_windows


@given(
    n=st.integers(1, 6),
    t=st.integers(4, 24),
    h=st.integers(1, 5),
    m=st.integers(1, 8),
    k=st.integers(1, 8),
    seed=st.integers(0, 100),
)
@settings(max_examples=60, deadline=None)
def test_property_windows_match_bruteforce(n, t, h, m, k, seed):
    if m + k > t:
        return
    rng = np.random.default_rng(seed)
    feats = rng.normal(size=(n, t, h))
    y = rng.uniform(0.1, 5.0, size=(n, t))
    x, targets, groups = build_windows(feats, y, m, k)
    n_windows = t - m - k + 1
    assert x.shape == (n * n_windows, m, h)
    # Brute-force cross-check of a few random windows.
    for _ in range(min(10, len(x))):
        i = int(rng.integers(0, len(x)))
        run = int(groups[i])
        tc = (m - 1) + (i // n)  # windows are blocked by tc, then by run
        np.testing.assert_allclose(x[i], feats[run, tc - m + 1 : tc + 1, :])
        np.testing.assert_allclose(
            targets[i], y[run, tc + 1 : tc + 1 + k].sum()
        )


@given(
    t=st.integers(8, 20),
    m_small=st.integers(1, 3),
    m_big=st.integers(4, 7),
)
@settings(max_examples=25, deadline=None)
def test_property_align_m_equalises_sample_counts(t, m_small, m_big):
    k = 1
    if m_big + k > t:
        return
    feats = np.zeros((3, t, 2))
    y = np.ones((3, t))
    xs, _, _ = build_windows(feats, y, m_small, k, align_m=m_big)
    xb, _, _ = build_windows(feats, y, m_big, k)
    assert len(xs) == len(xb)
    assert xs.shape[1] == m_small


def test_align_m_validation():
    feats = np.zeros((2, 10, 2))
    y = np.ones((2, 10))
    with pytest.raises(ValueError):
        build_windows(feats, y, m=5, k=2, align_m=3)


@given(scale=st.floats(0.1, 100.0))
@settings(max_examples=20, deadline=None)
def test_property_targets_scale_with_y(scale):
    rng = np.random.default_rng(0)
    feats = rng.normal(size=(2, 12, 3))
    y = rng.uniform(1, 2, size=(2, 12))
    _, t1, _ = build_windows(feats, y, 3, 2)
    _, t2, _ = build_windows(feats, y * scale, 3, 2)
    np.testing.assert_allclose(t2, t1 * scale, rtol=1e-9)
