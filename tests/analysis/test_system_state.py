"""System-state forecasting extension (§V-C's closing proposal)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.system_state import forecast_system_channel
from repro.campaign.datasets import LDMS_FEATURES
from repro.ml.attention import AttentionForecaster

from tests.analysis.test_deviation_forecasting import _synthetic_dataset


def _fast_model(seed=0):
    return AttentionForecaster(d_model=8, hidden=16, epochs=50, seed=seed)


def test_forecast_system_channel_structure():
    ds = _synthetic_dataset(n=24, t=24)
    res = forecast_system_channel(
        ds, channel="IO_PT_FLIT_TOT", m=4, k=4, model_factory=_fast_model
    )
    assert res.channel == "IO_PT_FLIT_TOT"
    assert res.mape > 0
    assert res.persistence_mape > 0
    assert -5 <= res.r2 <= 1
    assert isinstance(res.beats_persistence, bool)


def test_unknown_channel_rejected():
    ds = _synthetic_dataset(n=10, t=12)
    with pytest.raises(ValueError):
        forecast_system_channel(ds, channel="NOT_A_CHANNEL", m=3, k=3)


def test_predictable_channel_beats_persistence_poor_baseline():
    """A channel with per-run persistent level + per-step noise: the model
    should denoise better than raw persistence."""
    rng = np.random.default_rng(0)
    ds = _synthetic_dataset(n=30, t=20)
    # Inject a persistent-per-run, noisy-per-step io channel.
    ci = LDMS_FEATURES.index("IO_PT_FLIT_TOT")
    for r in ds.runs:
        level = rng.uniform(1, 3)
        r.ldms[:, ci] = level * 1e10 * rng.lognormal(0, 0.3, size=len(r.step_times))
    res = forecast_system_channel(
        ds, channel="IO_PT_FLIT_TOT", m=5, k=5, model_factory=_fast_model
    )
    assert res.mape < 2 * res.persistence_mape


def test_campaign_channel(tiny_campaign):
    ds = tiny_campaign["MILC-128"]
    if len(ds) < 3:
        pytest.skip("tiny campaign too small")
    res = forecast_system_channel(
        ds, channel="SYS_RT_FLIT_TOT", m=8, k=10, n_splits=3,
        model_factory=_fast_model,
    )
    assert res.mape > 0
