"""Deviation prediction and forecasting pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.deviation import (
    deviation_analysis,
    deviation_prediction_mape,
)
from repro.analysis.forecasting import (
    TIERS,
    build_windows,
    forecast_mape,
    forecasting_feature_importances,
    long_run_forecast,
)
from repro.campaign.datasets import RunDataset, RunRecord
from repro.ml.attention import AttentionForecaster
from repro.ml.gbr import GradientBoostedRegressor
from repro.network.counters import APP_COUNTERS


def _fast_gbr():
    return GradientBoostedRegressor(n_estimators=20, max_depth=2, random_state=0)


def _fast_model(seed=0):
    return AttentionForecaster(
        d_model=8, hidden=16, epochs=60, batch_size=64, seed=seed
    )


def _synthetic_dataset(n=30, t=24, signal_counter="RT_RB_STL", seed=0):
    """A dataset whose per-step deviations are driven by one counter.

    The counter carries an autocorrelated 'congestion' signal so that
    forecasting future steps from past counters is possible.
    """
    rng = np.random.default_rng(seed)
    ci = APP_COUNTERS.index(signal_counter)
    runs = []
    trend = 10.0 + np.sin(np.arange(t) / 4.0)
    for i in range(n):
        # Slowly varying congestion level per run.
        level = np.cumsum(rng.normal(0, 0.15, size=t)) + rng.uniform(0, 2)
        level = np.clip(level, 0, None)
        counters = rng.lognormal(0, 0.05, size=(t, 13)) * 1e9
        counters[:, ci] = (1.0 + level) * 1e9
        y = trend * (1.0 + 0.4 * level) * rng.lognormal(0, 0.01, size=t)
        runs.append(
            RunRecord(
                run_index=i,
                start_time=float(i) * 1e4,
                step_times=y,
                compute_times=y * 0.2,
                mpi_times=y * 0.8,
                counters=counters,
                ldms=rng.lognormal(0, 0.05, size=(t, 8)) * 1e10,
                num_routers=32 + int(rng.integers(0, 20)),
                num_groups=2 + int(rng.integers(0, 4)),
                neighborhood=[],
                routine_times={"Wait": float(y.sum() * 0.8)},
            )
        )
    return RunDataset(key="SYN-128", runs=runs)


# --------------------------------------------------------------------- #
# deviation
# --------------------------------------------------------------------- #


def test_deviation_analysis_finds_signal_counter():
    ds = _synthetic_dataset()
    res = deviation_analysis(
        ds, n_splits=4, estimator_factory=_fast_gbr, max_samples=500
    )
    assert res.key == "SYN-128"
    scores = res.scores_by_counter()
    assert scores["RT_RB_STL"] >= 0.75
    assert "RT_RB_STL" in res.top_counters(3)


def test_deviation_mape_below_paper_threshold():
    """Paper §V-B: prediction MAPE < 5% for all datasets."""
    ds = _synthetic_dataset()
    err = deviation_prediction_mape(ds, n_splits=5, max_samples=600)
    assert err < 5.0


def test_deviation_analysis_requires_enough_runs():
    ds = _synthetic_dataset(n=3)
    with pytest.raises(ValueError):
        deviation_analysis(ds, n_splits=10)


# --------------------------------------------------------------------- #
# windows
# --------------------------------------------------------------------- #


def test_build_windows_shapes_and_targets():
    n, t, h = 4, 10, 3
    feats = np.arange(n * t * h, dtype=float).reshape(n, t, h)
    y = np.tile(np.arange(t, dtype=float), (n, 1))
    x, targets, groups = build_windows(feats, y, m=3, k=2)
    n_windows = t - 3 - 2 + 1  # tc from m-1=2 to t-k-1=7
    assert x.shape == (n * n_windows, 3, h)
    assert targets.shape == (n * n_windows,)
    assert groups.shape == (n * n_windows,)
    # First block is tc=2 for every run: target = y[3] + y[4] = 7.
    np.testing.assert_allclose(targets[:n], 7.0)
    # Window content: steps tc-m+1..tc = 0..2 of each run.
    np.testing.assert_allclose(x[0], feats[0, 0:3, :])


def test_build_windows_validation():
    feats = np.zeros((2, 10, 3))
    y = np.zeros((2, 10))
    with pytest.raises(ValueError):
        build_windows(feats, y, m=0, k=1)
    with pytest.raises(ValueError):
        build_windows(feats, y, m=8, k=4)


# --------------------------------------------------------------------- #
# forecasting
# --------------------------------------------------------------------- #


def test_forecast_mape_reasonable_on_learnable_data():
    ds = _synthetic_dataset(n=24, t=24)
    res = forecast_mape(ds, m=4, k=4, tier="app", n_splits=3, model_factory=_fast_model)
    assert res.key == "SYN-128"
    assert res.m == 4 and res.k == 4
    assert len(res.per_fold) == 3
    # Autocorrelated congestion => much better than the worst possible.
    assert res.mape < 40.0


def test_forecast_tier_feature_counts():
    ds = _synthetic_dataset(n=12, t=16)
    for tier, spec in TIERS.items():
        feats = spec.matrix(ds)
        assert feats.shape[2] == len(spec.feature_names())
        assert feats.shape[2] == len(ds.feature_names(**spec.kwargs()))


def test_forecast_unknown_tier():
    ds = _synthetic_dataset(n=8, t=12)
    with pytest.raises(ValueError):
        forecast_mape(ds, 3, 2, tier="everything")


def test_forecasting_importances_highlight_signal():
    ds = _synthetic_dataset(n=30, t=24)
    names, imp = forecasting_feature_importances(
        ds, m=4, k=4, tier="app", model_factory=_fast_model
    )
    assert len(names) == len(imp) == 13
    assert imp.sum() == pytest.approx(1.0)
    # The driving counter should rank in the top few.
    rank = list(np.argsort(-imp))
    assert rank.index(APP_COUNTERS.index("RT_RB_STL")) < 5


def test_long_run_forecast():
    train = _synthetic_dataset(n=24, t=24)
    long = _synthetic_dataset(n=1, t=120, seed=99).runs[0]
    res = long_run_forecast(
        train, long, m=6, k=12, tier="app", model_factory=_fast_model
    )
    n_seg = len(res.segment_starts)
    assert n_seg == len(res.observed) == len(res.predicted)
    assert n_seg >= 5
    # Segments tile the run after the first m steps.
    assert res.segment_starts[0] == 6
    assert np.all(np.diff(res.segment_starts) == 12)
    # Predictions are in the right ballpark (same units, same scale).
    assert res.mape < 60.0
    assert res.observed.min() > 0
