"""Cell-qualified experiment ids: parsing, explain headers, e2e runs."""

from __future__ import annotations

import pytest

from repro.experiments import (
    canonical_exp_id,
    explain_experiments,
    run_experiments,
    split_cell,
)


@pytest.mark.parametrize(
    "exp_id,plain,cell",
    [
        ("fig09", "fig09", None),
        ("fig07:MILC-512", "fig07:MILC-512", None),
        ("fig09:df+/valiant", "fig09", ("df+", "valiant")),
        ("fig09:dfplus/val", "fig09", ("df+", "valiant")),
        # The default cell normalises away entirely.
        ("fig09:dragonfly/ugal", "fig09", None),
        ("fig09:df/adaptive", "fig09", None),
        ("fig07:MILC-512@df+/minimal", "fig07:MILC-512", ("df+", "minimal")),
        ("fig07:MILC-512@dragonfly/ugal", "fig07:MILC-512", None),
    ],
)
def test_split_cell(exp_id, plain, cell):
    assert split_cell(exp_id) == (plain, cell)


def test_split_cell_rejects_unknown_names():
    with pytest.raises(ValueError):
        split_cell("fig09:torus/ugal")
    with pytest.raises(ValueError):
        split_cell("fig09:df+/ecmp")
    with pytest.raises(ValueError):
        split_cell("fig07:MILC-512@torus/ugal")


def test_canonical_exp_id():
    assert canonical_exp_id("fig09") == "fig09"
    assert canonical_exp_id("fig09:dfplus/val") == "fig09:df+/valiant"
    assert canonical_exp_id("fig09:dragonfly/ugal") == "fig09"
    assert (
        canonical_exp_id("fig07:MILC-512@dfplus/min")
        == "fig07:MILC-512@df+/minimal"
    )


def test_cli_rejects_bad_cell(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["fig09:torus/ugal", "--explain"])
    err = capsys.readouterr().err
    assert "registered topologies" in err


def test_supplied_campaign_conflicts_with_cell(tiny_campaign):
    with pytest.raises(ValueError, match="fixes the"):
        run_experiments(
            ["fig03:df+/valiant"], campaign=tiny_campaign, fast=True
        )


def test_explain_headers_cells(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    default = explain_experiments(["fig09"], fast=True)
    assert "cell" not in default.splitlines()[0]
    mixed = explain_experiments(["fig09", "fig09:df+/valiant"], fast=True)
    assert "cell df+/valiant" in mixed
    # The default-cell plan is byte-identical with and without company.
    assert default in mixed


@pytest.mark.artifact_cache
def test_fig09_runs_on_distinct_cells(tmp_path, monkeypatch):
    """fig09 end-to-end on two cells: distinct campaigns, distinct artifacts."""
    from repro.experiments.context import clear_cache, experiment_config

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_cache()
    cells = [("df+", "valiant"), ("dragonfly", "minimal")]
    fps = {experiment_config(True, c).fingerprint() for c in cells}
    fps.add(experiment_config(True).fingerprint())
    assert len(fps) == 3

    ids = ["fig09:df+/valiant", "fig09:dragonfly/minimal"]
    results = run_experiments(ids, fast=True)
    texts = set()
    for exp_id in ids:
        res = results[exp_id]
        assert res.exp_id == exp_id
        assert "%" in res.text
        texts.add(res.text)
    assert len(texts) == 2  # different cells, different numbers
    # Each cell's campaign is cached under its own fingerprint.
    from repro.campaign.datasets import Campaign

    cached = {p.name for p in Campaign.cache_dir().iterdir() if p.is_dir()}
    for cell in cells:
        assert experiment_config(True, cell).fingerprint() in cached
    clear_cache()
