"""CLI/API seams of the stage-graph refactor.

Covers the ``--fast``/``REPRO_FAST`` precedence rule (both orders), the
parameterised ``fig07:<dataset>`` addressing, ``--explain``/``--force``,
and the ``--export`` error path (nonzero exit, per-file reporting).
"""

from __future__ import annotations

import pytest

import repro.experiments.context as context_mod
from repro.experiments import run_experiment
from repro.experiments.__main__ import main
from repro.experiments.context import resolve_fast
from repro.experiments.export import ExportError, export_result
from repro.experiments.report import ExperimentResult


# --------------------------------------------------------------------------- #
# resolve_fast precedence (satellite: both orders)
# --------------------------------------------------------------------------- #


def test_explicit_flag_wins_over_env_off(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "0")
    assert resolve_fast(True) is True


def test_env_on_wins_over_flag_default(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")
    assert resolve_fast(False) is True
    assert resolve_fast(None) is True


def test_neither_set_means_full_scale(monkeypatch):
    monkeypatch.delenv("REPRO_FAST", raising=False)
    assert resolve_fast(False) is False
    assert resolve_fast(None) is False


@pytest.fixture()
def seen_fast(monkeypatch):
    """Record the fast flag every ExperimentContext resolves."""
    seen = {}
    real = context_mod.ExperimentContext

    class Spy(real):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            seen["fast"] = self.fast

    monkeypatch.setattr(context_mod, "ExperimentContext", Spy)
    return seen


def test_cli_fast_flag_honoured_even_when_env_says_no(monkeypatch, seen_fast):
    monkeypatch.setenv("REPRO_FAST", "0")
    assert main(["table01", "--fast"]) == 0
    assert seen_fast["fast"] is True


def test_cli_env_fast_honoured_without_flag(monkeypatch, seen_fast):
    monkeypatch.setenv("REPRO_FAST", "1")
    assert main(["table01"]) == 0
    assert seen_fast["fast"] is True


def test_cli_defaults_to_full_scale(monkeypatch, seen_fast):
    monkeypatch.delenv("REPRO_FAST", raising=False)
    assert main(["table01"]) == 0
    assert seen_fast["fast"] is False


# --------------------------------------------------------------------------- #
# Parameterised experiments (satellite: fig07:<dataset>)
# --------------------------------------------------------------------------- #


def test_fig07_takes_a_dataset_argument(tiny_campaign):
    res = run_experiment("fig07:MILC-512", campaign=tiny_campaign, fast=True)
    assert res.exp_id == "fig07:MILC-512"
    assert "MILC-512" in res.title
    default = run_experiment("fig07", campaign=tiny_campaign, fast=True)
    assert "AMG-128" in default.title


def test_fig07_unknown_dataset_rejected(tiny_campaign):
    with pytest.raises(KeyError, match="unknown dataset"):
        run_experiment("fig07:NOPE-999", campaign=tiny_campaign, fast=True)


def test_argument_on_parameterless_experiment_rejected():
    with pytest.raises(KeyError, match="does not take an argument"):
        run_experiment("table01:AMG-128")


def test_unknown_experiment_keyerror_lists_choices():
    with pytest.raises(KeyError, match="unknown experiment 'nope'"):
        run_experiment("nope")


def test_cli_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["nope"])
    assert exc.value.code == 2
    assert "unknown experiment" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# --explain / --force
# --------------------------------------------------------------------------- #


@pytest.mark.artifact_cache
def test_explain_shows_miss_then_hit(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

    assert main(["table01", "--explain"]) == 0
    out = capsys.readouterr().out
    assert "[miss]" in out and "render:table01" in out

    # Explain must not have executed anything.
    assert main(["table01", "--explain"]) == 0
    assert "[miss]" in capsys.readouterr().out

    assert main(["table01"]) == 0
    capsys.readouterr()
    assert main(["table01", "--explain"]) == 0
    out = capsys.readouterr().out
    assert "[hit ]" in out and "[miss]" not in out

    # --force plans every stage as a recompute despite the warm store.
    assert main(["table01", "--explain", "--force"]) == 0
    assert "[force]" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# --export error surfacing (satellite: the hoisted-import bugfix)
# --------------------------------------------------------------------------- #


def test_export_unwritable_dir_raises_export_error(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file where the export dir should go")
    result = ExperimentResult("x", "t", {}, "body")
    with pytest.raises(ExportError, match="export failed for x"):
        export_result(result, target)


def test_export_partial_failure_records_both_sides(tmp_path):
    out = tmp_path / "results"
    out.mkdir()
    (out / "x.json").mkdir()  # the JSON target cannot be written
    result = ExperimentResult("x", "t", {"rows": [[1, 2]]}, "body")
    with pytest.raises(ExportError) as exc:
        export_result(result, out)
    err = exc.value
    assert [p.name for p, _ in err.errors] == ["x.json"]
    assert sorted(p.name for p in err.written) == ["x.csv", "x.txt"]
    assert (out / "x.txt").read_text().startswith("== x: t ==")


def test_cli_export_failure_exits_nonzero_and_reports(tmp_path, capsys):
    out = tmp_path / "results"
    out.mkdir()
    (out / "table02.json").mkdir()
    assert main(["table02", "--export", str(out)]) == 1
    captured = capsys.readouterr()
    assert "error: export failed for table02" in captured.err
    assert "table02.json" in captured.err
    # The files that could be written still were, and were reported.
    assert "wrote" in captured.out and "table02.txt" in captured.out


def test_cli_export_success_stays_zero(tmp_path, capsys):
    assert main(["table02", "--export", str(tmp_path / "ok")]) == 0
    assert "wrote" in capsys.readouterr().out
