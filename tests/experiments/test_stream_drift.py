"""End-to-end drift experiment: append re-runs only the fresh shards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.runner import CampaignConfig
from repro.campaign.streaming import StreamConfig, run_stream
from repro.experiments.stream_drift import (
    fresh_shard_fingerprints,
    incremental_violations,
    plan_stream_drift,
    stream_drift,
    stream_keys,
)
from repro.ml.drift import DriftReport, rolling_drift
from repro.obs import METRICS

KEYS = ["AMG-128"]


@pytest.fixture()
def _stream_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "1")
    return tmp_path


@pytest.mark.artifact_cache
def test_stream_drift_append_is_incremental(_stream_env):
    base = CampaignConfig.tiny()
    camp2 = run_stream(StreamConfig(base=base, windows=2, window_days=2.0))
    result = stream_drift(camp2, keys=KEYS, fast=True)
    rep = result.data["reports"]["AMG-128"]
    assert isinstance(rep, DriftReport)
    assert [w.window for w in rep.windows] == [1]
    assert len(rep.windows[0].fresh) == len(rep.seeds)
    assert np.isfinite(rep.windows[0].fresh_mean)

    # Append one window: the resolved plan's only cold work is the new
    # window's shard cone plus stream-keyed bookkeeping and reduces.
    camp3 = run_stream(StreamConfig(base=base, windows=3, window_days=2.0))
    plans = plan_stream_drift(camp3, keys=KEYS, fast=True)
    fresh = fresh_shard_fingerprints(camp3)
    assert incremental_violations(plans, fresh) == []
    stale_misses = [
        p
        for p in plans
        if p.status == "miss" and p.stage.shard
        and not set(p.stage.shard) <= fresh
    ]
    assert stale_misses == []
    assert any(p.status == "hit" and p.stage.shard for p in plans)

    hit = METRICS.counter("graph.shard.hit")
    miss = METRICS.counter("graph.shard.miss")
    h0, m0 = hit.value, miss.value
    result3 = stream_drift(camp3, keys=KEYS, fast=True)
    rep3 = result3.data["reports"]["AMG-128"]
    assert [w.window for w in rep3.windows] == [1, 2]
    # Window 1's evaluation is identical whether computed in the
    # 2-window run or reused by the 3-window one.
    assert rep3.windows[0].fresh == rep.windows[0].fresh
    assert rep3.windows[0].stale == rep.windows[0].stale
    assert hit.value > h0
    # Fresh-window misses only: train (2 seeds) + eval for window 2.
    assert miss.value - m0 == 3
    assert "fresh MAPE" in result3.render()


def test_incremental_violations_classification():
    from repro.graph import Graph, GraphRunner, ArtifactStore
    from tests.graph.test_shard_stages import shard_body

    g = Graph()
    g.add("stale", shard_body, params={"value": 0}, dataset="K",
          shard="old0000000000000")
    g.add("fresh", shard_body, params={"value": 1}, dataset="K",
          shard="new0000000000000")
    g.add("full", shard_body, params={"value": 2}, dataset="K")
    g.add("root", shard_body, params={"value": 3}, campaign=True)
    g.add("reduce", shard_body, params={"value": 4},
          inputs=[("up", "fresh")])
    runner = GraphRunner(
        g, store=ArtifactStore(enabled=True), campaign_fingerprint="fp"
    )
    plans = [p for p in runner.plan() if p.status == "miss"]
    bad = incremental_violations(plans, {"new0000000000000"})
    assert len(bad) == 2
    assert any("stale-shard" in b for b in bad)
    assert any("full-dataset" in b for b in bad)


def test_stream_keys_requires_streamed_campaign(tiny_campaign):
    with pytest.raises(ValueError):
        stream_keys(tiny_campaign)


def test_rolling_drift_matches_graph_numbers(_stream_env):
    """The pure in-process driver computes the same trajectories."""
    from repro.experiments._forecast_common import fast_forecaster

    base = CampaignConfig.tiny()
    camp = run_stream(StreamConfig(base=base, windows=2, window_days=2.0))
    graph_rep = stream_drift(camp, keys=KEYS, fast=True).data["reports"][
        "AMG-128"
    ]
    pure = rolling_drift(
        camp["AMG-128"], m=3, k=2, tier="app", seeds=(0, 1),
        model_factory=fast_forecaster,
    )
    assert [w.window for w in pure.windows] == [
        w.window for w in graph_rep.windows
    ]
    for a, b in zip(pure.windows, graph_rep.windows):
        np.testing.assert_allclose(a.fresh, b.fresh, rtol=1e-12)
        np.testing.assert_allclose(a.stale, b.stale, rtol=1e-12)
    rows = pure.rows()
    assert rows and rows[0][0] == "w1"


def test_obs_report_surfaces_stream_counters():
    from repro.obs.report import _cache_summary

    lines = _cache_summary(
        {
            "features.append.hit": 4,
            "features.append.miss": 2,
            "graph.shard.hit": 10,
            "graph.shard.miss": 3,
            "graph.shard.run": 3,
        }
    )
    text = "\n".join(lines)
    assert "feature append: 4 shard reuses, 2 shard builds" in text
    assert "shard stages: 10 artifact hits, 3 misses, 3 stages run" in text
