"""End-to-end experiment drivers against the shared tiny campaign."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.context import long_run_key
from repro.network.counters import APP_COUNTERS


def test_registry_covers_all_paper_artifacts():
    from repro.experiments import PAPER_EXPERIMENTS

    assert set(PAPER_EXPERIMENTS) == {
        "table01",
        "table02",
        "table03",
        "fig01",
        "fig03",
        "fig04",
        "fig05",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
    }
    extras = set(EXPERIMENTS) - set(PAPER_EXPERIMENTS)
    assert extras == {
        "extra-comm",
        "extra-routing",
        "extra-whatif",
        "extra-sysforecast",
        "extra-placement",
        "extra-contention",
    }
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_extras_run_fast(tiny_campaign):
    comm = run_experiment("extra-comm")
    assert "msgs/rank/step" in comm.text
    routing = run_experiment("extra-routing", fast=True)
    assert "adversary" in routing.text
    whatif = run_experiment("extra-whatif", campaign=tiny_campaign)
    assert "aggressors" in whatif.text
    sysf = run_experiment("extra-sysforecast", campaign=tiny_campaign, fast=True)
    assert "persistence" in sysf.text.lower()
    placement = run_experiment("extra-placement", fast=True)
    assert "fragmentation cost" in placement.text
    contention = run_experiment("extra-contention", fast=True)
    assert "hotspot-job" in contention.text


def test_table01_static():
    res = run_experiment("table01")
    assert len(res.data["rows"]) == 6
    assert "nlpkkt240" in res.render()


def test_table02_static():
    res = run_experiment("table02")
    assert len(res.data["rows"]) == 13
    assert "RT_RB_STL" in res.text
    assert "AR_RTR_PT_COLBUF_PERF_STALL_RQ" in res.text


def test_table03_on_tiny(tiny_campaign):
    res = run_experiment("table03", campaign=tiny_campaign)
    assert "recovery rate" in res.text.lower()
    assert set(res.data["table"]) == {
        "AMG-128",
        "AMG-512",
        "MILC-128",
        "MILC-512",
        "miniVite-128",
        "UMT-128",
    }


def test_fig01_series(tiny_campaign):
    res = run_experiment("fig01", campaign=tiny_campaign)
    for key, s in res.data["series"].items():
        assert s["relative"].min() >= 1.0
        assert (np.diff(s["time"]) >= 0).all()


def test_fig03_trends(tiny_campaign):
    res = run_experiment("fig03", campaign=tiny_campaign)
    trends = res.data["trends"]
    assert len(trends["MILC-128"]) == 80
    # Warmup visible.
    assert trends["MILC-128"][:20].mean() < trends["MILC-128"][20:].mean()
    # AMG weak scaling: 512 slower per step.
    assert trends["AMG-512"].mean() > trends["AMG-128"].mean()


def test_fig04_fig05_breakdowns(tiny_campaign):
    r4 = run_experiment("fig04", campaign=tiny_campaign)
    assert r4.data["MILC-512"]["mpi"]["worst"] >= r4.data["MILC-512"]["mpi"]["best"]
    # Compute time is stable (no OS noise): spread < 5%.
    comp = r4.data["AMG-512"]["compute"]
    assert abs(comp["worst"] - comp["best"]) < 0.1 * comp["average"]
    r5 = run_experiment("fig05", campaign=tiny_campaign)
    assert r5.data["miniVite-128"]["mpi_fraction"] > 0.95
    assert 0.2 < r5.data["UMT-128"]["mpi_fraction"] < 0.55
    # miniVite MPI time is nearly all Waitall.
    rt = r5.data["miniVite-128"]["routines"]
    assert rt["Waitall"]["average"] > 0.6 * r5.data["miniVite-128"]["mpi"]["average"]


def test_fig07_counter_trends(tiny_campaign):
    res = run_experiment("fig07", campaign=tiny_campaign)
    corr = res.data["correlations"]
    # Fig. 7's claim: mean counter trends mirror the mean time trend.
    # (The tiny campaign has few runs, so the stall-counter trend is noisy;
    # the benchmark-scale campaign asserts tighter correlations.)
    assert corr["RT_FLIT_TOT"] > 0.7
    assert corr["RT_RB_STL"] > 0.25


def test_fig09_relevance_fast(tiny_campaign):
    res = run_experiment("fig09", campaign=tiny_campaign, fast=True)
    assert res.data["scores"].shape[1] == len(APP_COUNTERS)
    assert (res.data["scores"] >= 0).all() and (res.data["scores"] <= 1).all()
    assert len(res.data["keys"]) >= 4


def test_fig08_grid_fast(tiny_campaign):
    res = run_experiment("fig08", campaign=tiny_campaign, fast=True)
    grid = res.data["grid"]
    assert "AMG-128" in grid
    cells = grid["AMG-128"]
    assert {(r.m, r.k) for r in cells} == {(3, 5), (3, 10), (8, 5), (8, 10)}
    assert all(r.mape > 0 for r in cells)
    assert {r.tier for r in cells} == {"app", "app+placement"}


def test_fig10_grid_fast(tiny_campaign):
    res = run_experiment("fig10", campaign=tiny_campaign, fast=True)
    grid = res.data["grid"]
    assert "MILC-128" in grid
    tiers = {r.tier for r in grid["MILC-128"]}
    assert "app+placement+io+sys" in tiers


def test_fig11_importances_fast(tiny_campaign):
    res = run_experiment("fig11", campaign=tiny_campaign, fast=True)
    assert "MILC-128" in res.data
    d = res.data["MILC-128"]
    assert len(d["names"]) == 23
    assert d["importances"].sum() == pytest.approx(1.0, abs=1e-6)


def test_fig12_longrun_fast(tiny_campaign):
    assert long_run_key(tiny_campaign) is not None
    res = run_experiment("fig12", campaign=tiny_campaign, fast=True)
    assert len(res.data["observed"]) == len(res.data["predicted"])
    assert len(res.data["observed"]) >= 2
    assert res.data["mape"] > 0


def test_cli_smoke(tiny_campaign, capsys, monkeypatch):
    from repro.experiments.__main__ import main

    # table01/table02 need no campaign.
    assert main(["table01"]) == 0
    assert main(["table02"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table II" in out
