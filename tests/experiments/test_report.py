"""Report rendering primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.report import (
    ExperimentResult,
    ascii_bars,
    ascii_heatmap,
    ascii_series,
    ascii_table,
)


def test_ascii_table_alignment():
    t = ascii_table(["a", "long header"], [[1, 2], ["xx", "yyyy"]])
    lines = t.splitlines()
    assert len(lines) == 4
    assert "long header" in lines[0]
    assert lines[1].startswith("-")


def test_ascii_series_renders_extremes():
    x = np.arange(10)
    y = np.linspace(0, 5, 10)
    s = ascii_series(x, y, width=20, height=5, label="test")
    assert "test" in s
    assert "*" in s
    assert s.count("\n") == 6  # label + 5 rows + axis


def test_ascii_series_validation():
    with pytest.raises(ValueError):
        ascii_series(np.arange(3), np.arange(4))
    with pytest.raises(ValueError):
        ascii_series(np.empty(0), np.empty(0))


def test_ascii_series_constant():
    s = ascii_series(np.arange(5), np.ones(5))
    assert "*" in s


def test_ascii_bars():
    s = ascii_bars(["aa", "b"], np.array([2.0, 1.0]), width=10)
    lines = s.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5
    with pytest.raises(ValueError):
        ascii_bars(["a"], np.array([1.0, 2.0]))


def test_ascii_bars_zero():
    s = ascii_bars(["a"], np.array([0.0]))
    assert "#" not in s


def test_ascii_heatmap():
    s = ascii_heatmap(["r1", "r2"], ["c1", "c2", "c3"], np.arange(6).reshape(2, 3))
    assert "r1" in s and "c3" in s and "5.00" in s
    with pytest.raises(ValueError):
        ascii_heatmap(["r1"], ["c1"], np.ones((2, 2)))


def test_experiment_result_render():
    r = ExperimentResult(exp_id="figX", title="Test", text="body")
    assert r.render().startswith("== figX: Test ==")
    assert "body" in r.render()
