"""Result export and campaign inspection utilities."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign.inspect import (
    render_summary,
    summarize_campaign,
    summarize_dataset,
)
from repro.campaign.datasets import RunDataset
from repro.experiments import run_experiment
from repro.experiments.export import _jsonable, export_result
from repro.experiments.report import ExperimentResult


def test_jsonable_handles_numpy_and_dataclasses():
    from repro.analysis.forecasting import ForecastResult

    payload = {
        "arr": np.arange(3),
        "f": np.float64(1.5),
        "i": np.int64(7),
        "nested": [ForecastResult("k", 1, 2, "app", 3.0)],
        "none": None,
    }
    out = _jsonable(payload)
    assert out["arr"] == [0, 1, 2]
    assert out["f"] == 1.5
    assert out["i"] == 7
    assert out["nested"][0]["mape"] == 3.0
    # Round-trips through json.
    json.dumps(out)


def test_export_result_writes_files(tmp_path):
    res = run_experiment("table01")
    paths = export_result(res, tmp_path)
    names = {p.name for p in paths}
    assert names == {"table01.json", "table01.txt", "table01.csv"}
    data = json.loads((tmp_path / "table01.json").read_text())
    assert data["exp_id"] == "table01"
    assert len(data["data"]["rows"]) == 6
    csv_text = (tmp_path / "table01.csv").read_text()
    assert "nlpkkt240" in csv_text


def test_export_without_rows(tmp_path):
    res = ExperimentResult("figX", "t", data={"x": np.ones(2)}, text="body")
    paths = export_result(res, tmp_path)
    assert {p.suffix for p in paths} == {".json", ".txt"}


def test_cli_export_flag(tmp_path, capsys):
    from repro.experiments.__main__ import main

    assert main(["table02", "--export", str(tmp_path)]) == 0
    assert (tmp_path / "table02.json").exists()
    assert "wrote" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# inspect
# --------------------------------------------------------------------- #


def test_summarize_campaign(tiny_campaign):
    summaries = summarize_campaign(tiny_campaign)
    keys = {s.key for s in summaries}
    assert "MILC-128" in keys
    for s in summaries:
        assert s.runs >= 1
        assert s.worst_over_best >= 1.0
        assert 0 <= s.optimal_fraction <= 1
        assert 0 < s.mpi_fraction < 1
        assert s.mean_num_routers >= s.mean_num_groups
    text = render_summary(summaries)
    assert "worst/best" in text
    assert "MILC-128" in text


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize_dataset(RunDataset(key="EMPTY"))


def test_campaign_cli_fast(tiny_campaign, capsys, monkeypatch, tmp_path):
    """The CLI path, against a pre-cached tiny campaign."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.campaign.runner import CampaignConfig

    # Seed the cache so the CLI loads instead of regenerating.
    tiny_campaign.save(CampaignConfig.tiny().fingerprint())
    from repro.campaign.__main__ import main

    assert main(["--fast"]) == 0
    out = capsys.readouterr().out
    assert "fingerprint" in out
    assert "ground-truth aggressors" in out
