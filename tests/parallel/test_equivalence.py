"""Serial vs parallel bit-identity for the rewired analysis fan-outs.

The determinism contract of `repro.parallel` is that the worker count can
never perturb any result: tasks are pure functions of their arguments and
gather in submission order.  These tests pin that contract on the real
consumers — the RFE fold fan-out and the forecasting ablation grid — and
on the KFold split streams they build their tasks from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.forecasting import ablation_grid
from repro.ml.attention import AttentionForecaster
from repro.ml.gbr import GradientBoostedRegressor
from repro.ml.model_selection import KFold
from repro.ml.rfe import relevance_scores


def _fast_gbr() -> GradientBoostedRegressor:
    return GradientBoostedRegressor(n_estimators=10, max_depth=2)


class _NoBinned:
    """Same numerics as GBR, but hides the pre-binned surface — forces
    the plain-fit fallback the fast path must match bit-for-bit."""

    def __init__(self) -> None:
        self._g = _fast_gbr()

    def fit(self, x, y):
        self._g.fit(x, y)
        return self

    def predict(self, x):
        return self._g.predict(x)

    @property
    def feature_importances_(self):
        return self._g.feature_importances_


def _tiny_forecaster(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(
        d_model=8, hidden=12, epochs=10, batch_size=64, seed=seed
    )


@pytest.fixture(autouse=True)
def _no_env_workers(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)


@pytest.fixture(scope="module")
def xy():
    rng = np.random.default_rng(7)
    x = rng.normal(size=(220, 6))
    y = 2.0 * x[:, 0] - x[:, 3] + rng.normal(scale=0.1, size=220) + 15.0
    return x, y


def _relevance(x, y, workers):
    return relevance_scores(
        x,
        y,
        [f"f{i}" for i in range(x.shape[1])],
        estimator_factory=_fast_gbr,
        n_splits=4,
        workers=workers,
    )


@pytest.mark.parametrize("workers", [0, 4])
def test_relevance_scores_worker_count_invariant(xy, workers):
    x, y = xy
    ref = _relevance(x, y, 1)
    par = _relevance(x, y, workers)
    assert np.array_equal(ref.scores, par.scores)
    assert ref.prediction_mape == par.prediction_mape
    assert ref.chosen_subsets == par.chosen_subsets


def test_relevance_scores_env_override(xy, monkeypatch):
    x, y = xy
    ref = _relevance(x, y, 1)
    monkeypatch.setenv("REPRO_WORKERS", "2")
    par = _relevance(x, y, 1)  # env wins over the argument
    assert np.array_equal(ref.scores, par.scores)
    assert ref.prediction_mape == par.prediction_mape


def test_binned_fast_path_matches_plain_fits(xy):
    # GBR takes the bin-once / column-slice path; _NoBinned re-bins every
    # subset fit.  Per-feature quantile edges make them bit-identical.
    x, y = xy
    fast = _relevance(x, y, 1)
    plain = relevance_scores(
        x,
        y,
        [f"f{i}" for i in range(x.shape[1])],
        estimator_factory=_NoBinned,
        n_splits=4,
        workers=1,
    )
    assert np.array_equal(fast.scores, plain.scores)
    assert fast.prediction_mape == plain.prediction_mape
    assert fast.chosen_subsets == plain.chosen_subsets


def test_ablation_grid_worker_count_invariant(tiny_campaign):
    key = next(k for k in tiny_campaign.keys() if "-long" not in k)
    ds = tiny_campaign[key]

    def grid(workers):
        return ablation_grid(
            ds,
            ms=[2, 3],
            ks=[2],
            tiers=["app"],
            n_splits=2,
            model_factory=_tiny_forecaster,
            workers=workers,
        )

    ref = grid(1)
    par = grid(3)
    assert [(r.key, r.m, r.k, r.tier) for r in ref] == [
        (r.key, r.m, r.k, r.tier) for r in par
    ]
    assert [r.per_fold for r in ref] == [r.per_fold for r in par]


def test_kfold_split_determinism():
    a = [(tr.tolist(), te.tolist()) for tr, te in KFold(5, seed=3).split(97)]
    b = [(tr.tolist(), te.tolist()) for tr, te in KFold(5, seed=3).split(97)]
    assert a == b
    c = [(tr.tolist(), te.tolist()) for tr, te in KFold(5, seed=4).split(97)]
    assert a != c
