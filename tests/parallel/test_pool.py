"""The generic worker-pool layer: ordering, guards, lifecycle, seeds."""

from __future__ import annotations

import os

import pytest

from repro.parallel import (
    WORKER_ENV,
    WorkerPool,
    WorkerPoolError,
    chunked,
    effective_workers,
    get_pool,
    in_worker,
    parallel_map,
    shutdown_pool,
    task_seed,
)


def _square(v: int) -> int:
    return v * v


def _pid(_: int) -> int:
    return os.getpid()


def _worker_state(_: int) -> tuple[bool, int]:
    return in_worker(), effective_workers(8)


def _boom(v: int) -> int:
    raise ValueError(f"task {v} exploded")


def _die(_: int) -> None:
    os._exit(17)


@pytest.fixture(autouse=True)
def _no_env_workers(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv(WORKER_ENV, raising=False)


def test_map_is_ordered_and_worker_count_invariant():
    tasks = [(v,) for v in range(20)]
    serial = parallel_map(_square, tasks, workers=1)
    assert serial == [v * v for v in range(20)]
    with WorkerPool(3) as pool:
        assert pool.map(_square, tasks) == serial


def test_serial_mode_runs_in_process():
    with WorkerPool(1) as pool:
        assert not pool.parallel
        assert pool.map(_pid, [(0,)]) == [os.getpid()]


def test_parallel_mode_forks():
    with WorkerPool(2) as pool:
        assert pool.parallel
        pids = pool.map(_pid, [(i,) for i in range(6)])
    assert all(p != os.getpid() for p in pids)


def test_nested_parallelism_guard():
    # Inside a pool worker, effective_workers() clamps to 1 regardless of
    # the requested count, so fan-out points nested in tasks go serial.
    with WorkerPool(2) as pool:
        states = pool.map(_worker_state, [(0,)])
    assert states == [(True, 1)]
    # The parent is not a worker and resolves normally.
    assert not in_worker()
    assert effective_workers(3) == 3


def test_env_var_wins(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert effective_workers(2) == 5
    monkeypatch.setenv("REPRO_WORKERS", "1")
    pool = WorkerPool(4)
    assert not pool.parallel


def test_task_exceptions_propagate_in_both_modes():
    with pytest.raises(ValueError, match="task 3 exploded"):
        parallel_map(_boom, [(3,)], workers=1)
    with WorkerPool(2) as pool:
        with pytest.raises(ValueError, match="task 3 exploded"):
            pool.map(_boom, [(3,)])


def test_worker_death_raises_pool_error():
    with WorkerPool(2) as pool:
        with pytest.raises(WorkerPoolError):
            pool.map(_die, [(i,) for i in range(4)])
        assert pool.broken


def test_shared_pool_reuse_and_recreate():
    shutdown_pool()
    try:
        serial = get_pool(1)
        assert not serial.parallel
        p2 = get_pool(2)
        assert p2 is get_pool(2)  # stable count -> same pool
        p3 = get_pool(3)
        assert p3 is not p2  # count change -> replaced
        assert p3.workers == 3
    finally:
        shutdown_pool()


def test_task_seed_is_stable_and_label_sensitive():
    assert task_seed("ds", 0) == task_seed("ds", 0)
    assert task_seed("ds", 0) != task_seed("ds", 1)
    assert task_seed("ds", 0) != task_seed("other", 0)
    assert 0 <= task_seed("ds", 0) < 2**31


def test_chunked():
    assert chunked([], 4) == []
    assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
    assert chunked([1, 2], 8) == [[1], [2]]
    assert [x for c in chunked(list(range(11)), 3) for x in c] == list(range(11))
