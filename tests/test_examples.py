"""Smoke tests: examples run end to end on the public API."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart + three domain scenarios


def test_quickstart_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "topology:" in out
    assert "quiet" in out and "busy" in out
    assert "fabric slowdown" in out
    # The busy run must actually be slower than the quiet one.
    import re

    slows = [float(m) for m in re.findall(r"fabric slowdown\s+([\d.]+)x", out)]
    assert len(slows) == 2
    assert slows[1] > slows[0]


@pytest.mark.parametrize(
    "name",
    ["neighborhood_blame.py", "deviation_counters.py", "forecast_milc.py",
     "scheduling_whatif.py"],
)
def test_domain_examples_compile(name):
    """Domain examples are import-clean (full runs are minutes-long and
    exercised via the campaign/analysis test suites)."""
    path = EXAMPLES / name
    source = path.read_text()
    compile(source, str(path), "exec")
    assert '"""' in source  # documented
    assert "def main()" in source
