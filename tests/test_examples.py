"""Smoke tests: examples run end to end on the public API.

The four domain examples actually *run* here under ``REPRO_FAST=1``,
sharing one cached test-scale campaign (generated once per session into
a shared cache directory), and each must print its headline result
within its wall-clock budget.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

#: Each domain example and the headline line it must print.
DOMAIN_EXAMPLES = {
    "neighborhood_blame.py": "recovery rate",
    "deviation_counters.py": "deviation-model prediction MAPE",
    "forecast_milc.py": "segment MAPE",
    "scheduling_whatif.py": "identified aggressors",
}

#: Wall-clock budget (seconds) per example under REPRO_FAST=1 with a warm
#: campaign cache — roughly 10x the local runtime, so only a genuine
#: regression (feature recomputation, an accidental benchmark-scale run)
#: trips it.  Scale with REPRO_TIME_BUDGET_FACTOR for slow machines.
TIME_BUDGETS = {
    "quickstart.py": 30.0,
    "neighborhood_blame.py": 20.0,
    "deviation_counters.py": 120.0,
    "forecast_milc.py": 30.0,
    "scheduling_whatif.py": 20.0,
    "streaming_drift.py": 120.0,
}


def _budget(name: str) -> float:
    factor = float(os.environ.get("REPRO_TIME_BUDGET_FACTOR", "1"))
    return TIME_BUDGETS[name] * factor


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert set(DOMAIN_EXAMPLES) <= names


def _run_example(name: str, env: dict[str, str]) -> subprocess.CompletedProcess:
    start = time.monotonic()
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=str(REPO),
    )
    elapsed = time.monotonic() - start
    budget = _budget(name)
    assert elapsed < budget, (
        f"{name} took {elapsed:.1f}s, over its {budget:.0f}s fast-mode "
        "budget (set REPRO_TIME_BUDGET_FACTOR to scale on slow machines)"
    )
    return proc


@pytest.fixture(scope="session")
def example_env(tmp_path_factory):
    """Environment for fast example runs: one shared campaign cache.

    The examples all use ``CampaignConfig.tiny()`` under ``REPRO_FAST=1``
    (the same fingerprint), so the first subprocess generates the
    campaign and the rest load it from disk.  An externally supplied
    ``REPRO_CACHE_DIR`` (e.g. the CI cache) is honoured.
    """
    env = dict(os.environ)
    env["REPRO_FAST"] = "1"
    env.setdefault("REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("excache")))
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # Pre-generate the shared campaign in-process so the per-example
    # subprocess timeout never absorbs generation time.
    from repro.campaign.runner import CampaignConfig, run_campaign

    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = env["REPRO_CACHE_DIR"]
    try:
        run_campaign(CampaignConfig.tiny())
    finally:
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old
    return env


def test_quickstart_runs():
    proc = _run_example("quickstart.py", dict(os.environ))
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "topology:" in out
    assert "quiet" in out and "busy" in out
    assert "fabric slowdown" in out
    # The busy run must actually be slower than the quiet one.
    slows = [float(m) for m in re.findall(r"fabric slowdown\s+([\d.]+)x", out)]
    assert len(slows) == 2
    assert slows[1] > slows[0]


@pytest.mark.parametrize("name", sorted(DOMAIN_EXAMPLES))
def test_domain_example_runs(name, example_env):
    proc = _run_example(name, example_env)
    assert proc.returncode == 0, proc.stderr
    assert DOMAIN_EXAMPLES[name] in proc.stdout, proc.stdout


def test_streaming_example_runs(tmp_path_factory):
    """The streaming example generates windowed campaigns with their own
    fingerprints, so it runs against a private cache — the shared
    example cache must keep exactly one campaign entry."""
    env = dict(os.environ)
    env["REPRO_FAST"] = "1"
    env["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("streamcache"))
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = _run_example("streaming_drift.py", env)
    assert proc.returncode == 0, proc.stderr
    assert "stream fingerprint:" in proc.stdout
    assert "fresh MAPE" in proc.stdout
    assert "mean drift" in proc.stdout


def test_domain_examples_share_one_campaign(example_env):
    """Under REPRO_FAST=1 every domain example resolves to the same
    campaign fingerprint, so CI pays for exactly one generation."""
    cache = Path(example_env["REPRO_CACHE_DIR"])
    # The cache also holds the derived-feature tree (features/v*/...);
    # campaign entries are every other top-level directory.
    entries = [p for p in cache.iterdir() if p.is_dir() and p.name != "features"]
    assert len(entries) == 1, entries
