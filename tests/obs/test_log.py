"""The single logging configurator: levels, env export, worker mirror."""

from __future__ import annotations

import logging
import os

import pytest

import repro.obs.log as obslog


@pytest.fixture
def pristine_logging(monkeypatch):
    """Snapshot the repro logger + module state and restore afterwards."""
    logger = obslog.get_logger()
    saved = (list(logger.handlers), logger.level, logger.propagate)
    monkeypatch.setattr(obslog, "_CONFIGURED", False)
    monkeypatch.delenv(obslog.LOG_LEVEL_ENV, raising=False)
    for h in list(logger.handlers):  # earlier tests may have configured
        logger.removeHandler(h)
    yield
    for h in list(logger.handlers):
        logger.removeHandler(h)
    for h in saved[0]:
        logger.addHandler(h)
    logger.setLevel(saved[1])
    logger.propagate = saved[2]


def test_get_logger_namespacing():
    assert obslog.get_logger().name == "repro"
    assert obslog.get_logger("campaign").name == "repro.campaign"
    # Children share the repro logger's handlers via propagation.
    assert obslog.get_logger("campaign").parent is obslog.get_logger()


def test_configure_defaults_to_info_and_exports(pristine_logging):
    logger = obslog.configure_logging()
    assert obslog.logging_configured()
    assert logger.level == logging.INFO
    assert os.environ[obslog.LOG_LEVEL_ENV] == "INFO"
    assert len(logger.handlers) == 1
    assert logger.propagate is False


def test_configure_reads_env_level(pristine_logging, monkeypatch):
    monkeypatch.setenv(obslog.LOG_LEVEL_ENV, "debug")
    assert obslog.configure_logging().level == logging.DEBUG
    assert os.environ[obslog.LOG_LEVEL_ENV] == "DEBUG"


def test_configure_is_idempotent_unless_forced(pristine_logging):
    obslog.configure_logging(level="INFO")
    obslog.configure_logging(level="DEBUG")  # ignored: already configured
    assert obslog.get_logger().level == logging.INFO
    obslog.configure_logging(level="DEBUG", force=True)
    assert obslog.get_logger().level == logging.DEBUG
    assert len(obslog.get_logger().handlers) == 1  # replaced, not stacked


def test_worker_stays_silent_without_parent_config(pristine_logging):
    obslog.configure_worker_logging()
    assert not obslog.logging_configured()
    assert not obslog.get_logger().handlers


def test_worker_mirrors_parent_level_with_pid_tag(pristine_logging, monkeypatch):
    monkeypatch.setenv(obslog.LOG_LEVEL_ENV, "INFO")
    obslog.configure_worker_logging()
    logger = obslog.get_logger()
    assert logger.level == logging.INFO
    (handler,) = logger.handlers
    rec = logger.makeRecord("repro.campaign", logging.INFO, "f", 1, "hi", (), None)
    assert f"[w{os.getpid()}]" in handler.format(rec)
