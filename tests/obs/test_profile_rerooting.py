"""Cross-process profiling parity: workers=4 re-roots into one tree.

Runs the same profiled fast-mode fig09 twice in subprocesses — serial
(``REPRO_WORKERS=1``) and parallel (``REPRO_WORKERS=4``) — with the
artifact store off so every stage executes both times, a shared campaign
cache so the datasets are generated once, and a separate trace per run.
The parallel trace must still be ONE connected span tree (worker spans
re-root under the coordinator via their exported parent id), and the
aggregated per-stage profile must be structurally identical to the
serial one: same stage keys, same call counts, same statuses.  Walls
differ, structure must not.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.profile import build_profile
from repro.obs.report import latest_trace, load_trace, span_tree

REPO = Path(__file__).resolve().parent.parent.parent


def _run_fig09(workers: int, cache: Path, traces: Path):
    env = dict(os.environ)
    env.update(
        REPRO_FAST="1",
        REPRO_TRACE="1",
        REPRO_PROFILE="1",
        REPRO_ARTIFACT_CACHE="0",
        REPRO_WORKERS=str(workers),
        REPRO_CACHE_DIR=str(cache),
        REPRO_TRACE_DIR=str(traces),
    )
    env.pop("REPRO_TRACE_FILE", None)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "fig09", "--fast"],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=str(REPO),
    )
    assert proc.returncode == 0, proc.stderr
    path = latest_trace(traces)
    assert path is not None, "profiled run produced no trace"
    return load_trace(path)


@pytest.fixture(scope="module")
def serial_and_parallel(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")  # shared: campaign built once
    serial = _run_fig09(1, cache, tmp_path_factory.mktemp("traces-serial"))
    parallel = _run_fig09(4, cache, tmp_path_factory.mktemp("traces-par"))
    return serial, parallel


def test_parallel_trace_is_one_connected_tree(serial_and_parallel):
    _, parallel = serial_and_parallel
    tree = span_tree(parallel.spans)
    roots = [rec["name"] for depth, rec in tree if depth == 0]
    assert roots == ["experiment.fig09"], (
        f"parallel spans did not re-root into one tree: roots={roots}"
    )
    # Worker batches really crossed the process boundary.
    assert len({s["pid"] for s in parallel.spans}) > 1


def test_stage_profiles_structurally_equal(serial_and_parallel):
    serial, parallel = serial_and_parallel

    def shape(data):
        prof = build_profile(data)
        assert prof is not None
        return {
            key: (rec["calls"], rec["status"])
            for key, rec in prof["stages"].items()
        }

    s, p = shape(serial), shape(parallel)
    assert s == p, f"serial={s}\nparallel={p}"


def test_profile_json_written_next_to_each_trace(serial_and_parallel):
    for data in serial_and_parallel:
        sidecar = data.path.parent / (data.path.stem + ".profile.json")
        assert sidecar.exists(), f"missing {sidecar}"


def test_worker_prof_records_present_in_parallel(serial_and_parallel):
    _, parallel = serial_and_parallel
    main_pid = parallel.manifest["pid"]
    worker_prof = [
        s for s in parallel.spans
        if s["pid"] != main_pid and s.get("prof")
    ]
    assert worker_prof, "no profiled spans from worker processes"
