"""Shared fixtures: an isolated trace run per test, cleaned up after."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import trace


def read_records(path: Path) -> list[dict]:
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


@pytest.fixture
def clean_trace_state(monkeypatch):
    """No run open, no trace env leaking in or out of the test."""
    trace.end_run()
    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
    monkeypatch.delenv(trace.TRACE_DIR_ENV, raising=False)
    monkeypatch.delenv(trace.TRACE_FILE_ENV, raising=False)
    trace._refresh_gate()
    yield
    trace.end_run()
    trace._refresh_gate()


@pytest.fixture
def trace_file(tmp_path, clean_trace_state) -> Path:
    """An open trace run writing into a per-test file."""
    path = tmp_path / "trace.jsonl"
    trace.start_run("test", path=path)
    return path
