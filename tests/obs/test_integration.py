"""End-to-end: one traced fast-mode experiment yields a usable trace.

Runs ``python -m repro.experiments fig09 --fast`` in a subprocess with
``REPRO_TRACE=1`` and asserts the resulting JSONL trace parses, its span
tree covers campaign generation, feature-store work, and pipeline
fit/predict, and ``python -m repro.obs report`` summarises it.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.report import latest_trace, load_trace, render_report, span_tree

REPO = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def traced_fig09(tmp_path_factory):
    cache = tmp_path_factory.mktemp("obscache")
    traces = tmp_path_factory.mktemp("traces")
    env = dict(os.environ)
    env.update(
        REPRO_FAST="1",
        REPRO_TRACE="1",
        REPRO_CACHE_DIR=str(cache),
        REPRO_TRACE_DIR=str(traces),
    )
    env.pop("REPRO_TRACE_FILE", None)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "fig09", "--fast"],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=str(REPO),
    )
    assert proc.returncode == 0, proc.stderr
    path = latest_trace(traces)
    assert path is not None, "traced run produced no trace file"
    return proc, path


def test_trace_is_parseable_with_manifest(traced_fig09):
    _, path = traced_fig09
    data = load_trace(path)
    assert data.manifest is not None
    assert data.manifest["env"]["REPRO_TRACE"] == "1"
    assert data.metrics, "no final metrics snapshot flushed"


def test_span_tree_covers_campaign_features_and_pipeline(traced_fig09):
    _, path = traced_fig09
    data = load_trace(path)
    names = {s["name"] for s in data.spans}
    assert "experiment.fig09" in names
    assert "campaign.run" in names
    assert "features.build" in names
    assert "ml.pipeline.fit" in names
    assert "ml.pipeline.predict" in names
    assert "ml.rfe.fold" in names
    # Everything hangs off the experiment span (workers re-rooted too).
    roots = [rec["name"] for depth, rec in span_tree(data.spans) if depth == 0]
    assert "experiment.fig09" in roots


def test_worker_spans_joined_the_trace(traced_fig09):
    _, path = traced_fig09
    data = load_trace(path)
    pids = {s["pid"] for s in data.spans}
    workers = [m for m in data.metrics if m.get("worker")]
    # Parallel generation is the default; if the box has one core the
    # campaign runs serially and there is nothing to join.
    if len(pids) > 1:
        assert workers, "worker processes left no metrics snapshot"


def test_progress_events_recorded(traced_fig09):
    _, path = traced_fig09
    data = load_trace(path)
    progress = [e for e in data.events if e["name"] == "campaign.progress"]
    assert progress, "campaign generation emitted no progress events"
    last = progress[-1]["attrs"]
    assert last["n_done"] == last["n_total"]
    assert last["elapsed"] >= 0
    assert isinstance(last["datasets"], dict)


def test_report_summarises_the_trace(traced_fig09):
    _, path = traced_fig09
    out = render_report(load_trace(path))
    assert "experiment.fig09" in out
    assert "feature cache:" in out
    assert "campaign cache:" in out
    assert "self %" in out


def test_report_cli_subprocess(traced_fig09):
    _, path = traced_fig09
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", "report", str(path), "--tree"],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=str(REPO),
    )
    assert proc.returncode == 0, proc.stderr
    assert "experiment.fig09" in proc.stdout
