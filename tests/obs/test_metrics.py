"""Metrics registry: instruments, in-place reset, snapshots."""

from __future__ import annotations

import threading

import pytest

from repro.obs import METRICS, MetricsRegistry


def test_counter_increments():
    reg = MetricsRegistry()
    c = reg.counter("c")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_counter_thread_safety():
    reg = MetricsRegistry()
    c = reg.counter("c")

    def worker():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    g = reg.gauge("g")
    g.set(3.5)
    assert g.value == 3.5
    g.add(1.5)
    assert g.value == 5.0


def test_histogram_summary():
    reg = MetricsRegistry()
    h = reg.histogram("h")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == 6.0
    assert h.min == 1.0
    assert h.max == 3.0
    assert h.mean == 2.0
    snap = h._snapshot()
    assert snap == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")


def test_type_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_reset_zeroes_in_place_keeping_references():
    """Modules cache instruments at import time (features/store.py does);
    reset() must zero those same objects, not replace them."""
    reg = MetricsRegistry()
    c = reg.counter("c")
    g = reg.gauge("g")
    h = reg.histogram("h")
    c.inc(3)
    g.set(2.0)
    h.observe(1.0)
    reg.reset()
    assert reg.counter("c") is c
    assert c.value == 0
    assert g.value == 0.0
    assert h.count == 0
    c.inc()
    assert reg.counter("c").value == 1


def test_snapshot_skips_zero_values():
    reg = MetricsRegistry()
    reg.counter("zero")
    reg.counter("nonzero").inc(2)
    reg.histogram("empty")
    reg.histogram("full").observe(1.5)
    snap = reg.snapshot()
    assert "zero" not in snap
    assert "empty" not in snap
    assert snap["nonzero"] == 2
    assert snap["full"]["count"] == 1


def test_global_registry_exists():
    c = METRICS.counter("tests.obs.metrics.probe")
    c.inc()
    assert METRICS.counter("tests.obs.metrics.probe").value >= 1
