"""Span semantics: nesting, exception safety, the disabled fast path."""

from __future__ import annotations

import threading

import pytest

from repro.obs import current_span_id, remote_parent, span, traced
from repro.obs import trace
from repro.obs.spans import _NOOP

from tests.obs.conftest import read_records


def _spans(path):
    return [r for r in read_records(path) if r["t"] == "span"]


def test_nesting_records_parent_ids(trace_file):
    with span("outer"):
        with span("inner"):
            pass
    trace.end_run()
    recs = {r["name"]: r for r in _spans(trace_file)}
    assert recs["inner"]["parent"] == recs["outer"]["id"]
    assert recs["outer"]["parent"] is None
    # Children close first, so they are written first.
    assert [r["name"] for r in _spans(trace_file)] == ["inner", "outer"]


def test_current_span_id_tracks_ambient_span(trace_file):
    assert current_span_id() is None
    with span("a") as sa:
        assert current_span_id() == sa.id
    assert current_span_id() is None


def test_exception_is_recorded_and_propagates(trace_file):
    with pytest.raises(ValueError, match="boom"):
        with span("failing"):
            raise ValueError("boom")
    trace.end_run()
    (rec,) = _spans(trace_file)
    assert rec["name"] == "failing"
    assert rec["ok"] is False
    assert rec["err"] == "ValueError: boom"
    # The ambient parent must be restored even after the exception.
    assert current_span_id() is None


def test_attrs_at_open_and_mid_span(trace_file):
    with span("s", dataset="AMG-64") as sp:
        sp.set(cached=True)
    trace.end_run()
    (rec,) = _spans(trace_file)
    assert rec["attrs"] == {"dataset": "AMG-64", "cached": True}
    assert rec["dur"] >= 0.0
    assert rec["pid"] > 0


def test_disabled_path_returns_shared_noop(clean_trace_state):
    s = span("anything", key="value")
    assert s is _NOOP
    # Reentrant and inert: no ambient span, no allocation per use.
    with s:
        with span("nested") as inner:
            assert inner is _NOOP
            assert inner.set(x=1) is inner
            assert current_span_id() is None


def test_traced_decorator_rechecks_gate_per_call(tmp_path, clean_trace_state):
    calls = []

    @traced("decorated.call", kind="test")
    def fn(v):
        calls.append(v)
        return v * 2

    assert fn(2) == 4  # tracing off: no record, plain call
    path = tmp_path / "t.jsonl"
    trace.start_run("test", path=path)
    assert fn(3) == 6
    trace.end_run()
    (rec,) = _spans(path)
    assert rec["name"] == "decorated.call"
    assert rec["attrs"] == {"kind": "test"}
    assert calls == [2, 3]


def test_remote_parent_adopts_foreign_id(trace_file):
    with remote_parent("beef.42"):
        with span("worker.task"):
            pass
    assert current_span_id() is None
    trace.end_run()
    (rec,) = _spans(trace_file)
    assert rec["parent"] == "beef.42"


def test_remote_parent_none_is_transparent(trace_file):
    with remote_parent(None):
        assert current_span_id() is None


def test_threads_do_not_inherit_ambient_parent(trace_file):
    """A fresh thread starts with no ambient span (contextvars default),
    so its spans become roots rather than nesting under whatever the
    main thread happened to be doing."""
    seen = {}

    def worker():
        seen["parent"] = current_span_id()

    with span("main.work"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen["parent"] is None


def test_span_ids_embed_pid_and_are_unique(trace_file):
    import os

    with span("a"):
        pass
    with span("b"):
        pass
    trace.end_run()
    recs = _spans(trace_file)
    ids = [r["id"] for r in recs]
    assert len(set(ids)) == 2
    prefix = f"{os.getpid():x}."
    assert all(i.startswith(prefix) for i in ids)
