"""Trace sink: manifests, enablement, worker attach, schema round-trip."""

from __future__ import annotations

import os

import pytest

from repro.obs import METRICS, annotate, event, span
from repro.obs import trace
from repro.obs.report import load_trace

from tests.obs.conftest import read_records


def test_manifest_is_first_record(trace_file, monkeypatch):
    trace.end_run()
    recs = read_records(trace_file)
    man = recs[0]
    assert man["t"] == "manifest"
    assert man["pid"] == os.getpid()
    assert isinstance(man["argv"], list)
    assert "python" in man["versions"]
    assert man["run_id"].endswith("-test")


def test_manifest_captures_repro_env_except_trace_file(
    tmp_path, clean_trace_state, monkeypatch
):
    monkeypatch.setenv("REPRO_FAST", "1")
    path = tmp_path / "t.jsonl"
    trace.start_run("test", path=path)
    trace.end_run()
    man = read_records(path)[0]
    assert man["env"]["REPRO_FAST"] == "1"
    assert all(k.startswith("REPRO_") for k in man["env"])
    assert trace.TRACE_FILE_ENV not in man["env"]


def test_start_run_is_idempotent_and_exports_path(trace_file):
    assert os.environ[trace.TRACE_FILE_ENV] == str(trace_file)
    assert trace.start_run("other") == trace_file
    trace.end_run()
    assert trace.TRACE_FILE_ENV not in os.environ
    assert not trace.active()


def test_ensure_run_off_by_default(clean_trace_state):
    assert trace.ensure_run() is None
    assert not trace.ACTIVE


def test_ensure_run_honours_repro_trace(tmp_path, clean_trace_state, monkeypatch):
    monkeypatch.setenv(trace.TRACE_ENV, "1")
    monkeypatch.setenv(trace.TRACE_DIR_ENV, str(tmp_path))
    trace._refresh_gate()
    path = trace.ensure_run("smoke")
    assert path is not None
    assert path.parent == tmp_path
    with span("gated"):
        pass
    trace.end_run()
    names = [r.get("name") for r in read_records(path)]
    assert "gated" in names


def test_first_span_starts_the_run(tmp_path, clean_trace_state, monkeypatch):
    """REPRO_TRACE=1 alone is enough: the first span opens the sink."""
    monkeypatch.setenv(trace.TRACE_ENV, "1")
    monkeypatch.setenv(trace.TRACE_DIR_ENV, str(tmp_path))
    trace._refresh_gate()
    with span("auto"):
        pass
    path = trace.current_trace_path()
    assert path is not None
    trace.end_run()
    assert "auto" in [r.get("name") for r in read_records(path)]


def test_worker_attaches_to_parent_file(tmp_path, clean_trace_state, monkeypatch):
    parent = tmp_path / "parent.jsonl"
    parent.write_text('{"t":"manifest","run_id":"x"}\n', encoding="utf-8")
    monkeypatch.setenv(trace.TRACE_FILE_ENV, str(parent))
    trace._refresh_gate()
    assert trace.ensure_run() == parent
    with span("worker.side"):
        pass
    trace.end_run()
    # The worker appended; the env var survives for sibling workers.
    assert os.environ[trace.TRACE_FILE_ENV] == str(parent)
    recs = read_records(parent)
    assert recs[-1]["t"] == "metrics"
    assert recs[-1]["worker"] is True
    assert "worker.side" in [r.get("name") for r in recs]


def test_attach_worker_handles_fork_inherited_sink(tmp_path, clean_trace_state):
    """A forked pool worker inherits the parent's open sink and metric
    values; attach_worker must swap in its own handle, mark the process
    as a worker, and zero the inherited counts (they are the parent's)."""
    path = tmp_path / "t.jsonl"
    trace.start_run("root", path=path)
    METRICS.counter("tests.obs.trace.fork").inc(5)
    assert trace.attach_worker() == path
    assert METRICS.counter("tests.obs.trace.fork").value == 0
    with span("child.work"):
        pass
    trace.end_run()
    recs = read_records(path)
    assert recs[-1]["t"] == "metrics"
    assert recs[-1]["worker"] is True
    assert "tests.obs.trace.fork" not in recs[-1]["values"]
    assert "child.work" in [r.get("name") for r in recs]
    # The env export is the parent's to clean up, not the worker's.
    assert os.environ[trace.TRACE_FILE_ENV] == str(path)


def test_attach_worker_noop_when_tracing_off(clean_trace_state):
    assert trace.attach_worker() is None
    assert not trace.ACTIVE


def test_end_run_flushes_metrics_snapshot(trace_file):
    METRICS.counter("tests.obs.trace.flush").inc(7)
    trace.end_run()
    recs = read_records(trace_file)
    met = [r for r in recs if r["t"] == "metrics"]
    assert len(met) == 1
    assert met[0]["worker"] is False
    assert met[0]["values"]["tests.obs.trace.flush"] >= 7


def test_schema_round_trip_via_load_trace(trace_file):
    with span("outer", dataset="MILC-128"):
        event("progress", n_done=1, n_total=4)
        annotate(fingerprint="abc123")
    trace.end_run()
    data = load_trace(trace_file)
    assert data.manifest is not None
    assert [s["name"] for s in data.spans] == ["outer"]
    assert data.events[0]["name"] == "progress"
    assert data.events[0]["attrs"] == {"n_done": 1, "n_total": 4}
    assert data.annotations[0]["attrs"] == {"fingerprint": "abc123"}
    assert data.metrics and data.metrics[-1]["pid"] == os.getpid()


def test_load_trace_warns_on_corrupt_lines(trace_file):
    with span("fine"):
        pass
    trace.end_run()
    with open(trace_file, "a", encoding="utf-8") as fh:
        fh.write('{"t":"span","name":"torn","dur":0.\n')
    with pytest.warns(RuntimeWarning, match="unparseable"):
        data = load_trace(trace_file)
    assert [s["name"] for s in data.spans] == ["fine"]


def test_events_are_noop_when_disabled(clean_trace_state):
    event("ignored", n=1)
    annotate(key="value")  # must not raise, must not create files
    assert trace.current_trace_path() is None


def test_trace_dir_prefers_explicit_env(monkeypatch, tmp_path):
    monkeypatch.setenv(trace.TRACE_DIR_ENV, str(tmp_path / "explicit"))
    assert trace.trace_dir() == tmp_path / "explicit"
    monkeypatch.delenv(trace.TRACE_DIR_ENV)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert trace.trace_dir() == tmp_path / "cache" / "traces"


# --------------------------------------------------------------------------- #
# Size guard.
# --------------------------------------------------------------------------- #


def test_size_guard_truncates_runaway_trace(
    tmp_path, clean_trace_state, monkeypatch
):
    monkeypatch.setenv(trace.TRACE_MAX_ENV, "0.001")  # ~1 kB
    path = tmp_path / "big.jsonl"
    trace.start_run("guard", path=path)
    for i in range(500):
        event("tick", i=i, pad="x" * 64)
    trace.end_run()
    recs = read_records(path)
    markers = [r for r in recs if r.get("t") == "truncated"]
    assert len(markers) == 1
    assert markers[0]["limit_mb"] == pytest.approx(0.001, rel=0.01)
    assert markers[0]["size_bytes"] > 1024
    # Everything after the marker was dropped except the final metrics
    # snapshot; far fewer than the 500 events made it to disk.
    ticks = [r for r in recs if r.get("name") == "tick"]
    assert len(ticks) < 500
    # The marker is the last event-ish record before end_run's flush.
    idx = recs.index(markers[0])
    assert all(r["t"] == "metrics" for r in recs[idx + 1:])


def test_size_guard_resets_between_runs(
    tmp_path, clean_trace_state, monkeypatch
):
    monkeypatch.setenv(trace.TRACE_MAX_ENV, "0.001")
    first = tmp_path / "first.jsonl"
    trace.start_run("one", path=first)
    for i in range(500):
        event("tick", i=i, pad="x" * 64)
    trace.end_run()
    assert any(r.get("t") == "truncated" for r in read_records(first))
    monkeypatch.setenv(trace.TRACE_MAX_ENV, "64")
    second = tmp_path / "second.jsonl"
    trace.start_run("two", path=second)
    event("fresh", n=1)
    trace.end_run()
    recs = read_records(second)
    assert not any(r.get("t") == "truncated" for r in recs)
    assert "fresh" in [r.get("name") for r in recs]


def test_size_guard_default_far_above_test_traffic(trace_file):
    # No REPRO_TRACE_MAX_MB: the 512 MB default never trips in tests.
    for i in range(100):
        event("tick", i=i)
    trace.end_run()
    assert not any(
        r.get("t") == "truncated" for r in read_records(trace_file)
    )
