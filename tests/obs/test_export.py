"""Trace export: chrome-trace and speedscope documents from span trees."""

from __future__ import annotations

import json

import pytest

from repro.obs import profiled_span, span, trace
from repro.obs.__main__ import main as obs_main
from repro.obs.export import chrome_trace, export_trace, speedscope
from repro.obs.report import load_trace


def _traced_run(tmp_path, monkeypatch, profile=False):
    if profile:
        monkeypatch.setenv(trace.PROFILE_ENV, "1")
        trace._refresh_gate()
    path = tmp_path / "run.jsonl"
    trace.start_run("exptest", path=path)
    with span("outer", kind="root"):
        with profiled_span("graph.stage", stage="inner"):
            pass
        trace.event("progress", n=1)
    trace.end_run()
    return load_trace(path)


def test_chrome_trace_complete_events(tmp_path, clean_trace_state, monkeypatch):
    doc = chrome_trace(_traced_run(tmp_path, monkeypatch))
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in spans] == ["outer", "graph.stage"]
    outer, inner = spans
    # Microseconds, zero-based, child inside parent.
    assert outer["ts"] == 0.0
    assert inner["ts"] >= outer["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1
    assert outer["args"] == {"kind": "root"}
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["progress"]


def test_chrome_trace_carries_prof_in_args(
    tmp_path, clean_trace_state, monkeypatch
):
    doc = chrome_trace(_traced_run(tmp_path, monkeypatch, profile=True))
    inner = next(
        e for e in doc["traceEvents"] if e["name"] == "graph.stage"
    )
    assert "cpu_user" in inner["args"]["prof"]


def test_speedscope_events_nest_strictly(
    tmp_path, clean_trace_state, monkeypatch
):
    doc = speedscope(_traced_run(tmp_path, monkeypatch))
    assert doc["$schema"].startswith("https://www.speedscope.app/")
    (profile,) = doc["profiles"]
    assert profile["type"] == "evented"
    depth = 0
    for ev in profile["events"]:
        depth += 1 if ev["type"] == "O" else -1
        assert depth >= 0
    assert depth == 0
    names = [doc["shared"]["frames"][e["frame"]]["name"]
             for e in profile["events"] if e["type"] == "O"]
    assert names == ["outer", "graph.stage"]


def test_export_trace_default_paths(tmp_path, clean_trace_state, monkeypatch):
    data = _traced_run(tmp_path, monkeypatch)
    out = export_trace(data, "chrome-trace")
    assert out == tmp_path / "run.chrome.json"
    json.loads(out.read_text())
    out2 = export_trace(data, "speedscope")
    assert out2 == tmp_path / "run.speedscope.json"
    json.loads(out2.read_text())


def test_export_trace_rejects_unknown_format(
    tmp_path, clean_trace_state, monkeypatch
):
    data = _traced_run(tmp_path, monkeypatch)
    with pytest.raises(ValueError, match="unknown export format"):
        export_trace(data, "pprof")


def test_cli_export(tmp_path, clean_trace_state, monkeypatch, capsys):
    _traced_run(tmp_path, monkeypatch)
    out = tmp_path / "custom.json"
    assert obs_main(
        ["export", str(tmp_path / "run.jsonl"), "--format", "chrome-trace",
         "--out", str(out)]
    ) == 0
    assert "wrote" in capsys.readouterr().out
    assert json.loads(out.read_text())["traceEvents"]
