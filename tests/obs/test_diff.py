"""Regression sentinel: profile loading, comparison, and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.diff import (
    DEFAULT_MIN_WALL,
    DEFAULT_WALL_RATIO,
    compare_profiles,
    load_profile_stages,
    render_diff,
)


def _stages(**walls):
    return {name: {"wall": w, "cpu": w, "maxrss_kb": 1000, "status": "run"}
            for name, w in walls.items()}


# --------------------------------------------------------------------------- #
# Loading.
# --------------------------------------------------------------------------- #


def test_load_harness_baseline_prefers_normalized_wall(tmp_path):
    doc = {
        "name": "profile_all",
        "stages": {
            "a": {"wall_s": 9.0, "normalized_wall": 3.0,
                  "normalized_cpu": 2.5, "maxrss_kb": 42, "status": "run"},
        },
    }
    p = tmp_path / "PROFILE_all_fast.json"
    p.write_text(json.dumps(doc))
    stages = load_profile_stages(p)
    assert stages["a"]["wall"] == 3.0
    assert stages["a"]["cpu"] == 2.5
    assert stages["a"]["maxrss_kb"] == 42


def test_load_profile_json_sums_cpu_components(tmp_path):
    doc = {
        "format": 1,
        "stages": {
            "b": {"wall": 4.0, "cpu_user": 1.0, "cpu_sys": 0.5,
                  "maxrss_kb": 7, "status": "run"},
        },
    }
    p = tmp_path / "run.profile.json"
    p.write_text(json.dumps(doc))
    stages = load_profile_stages(p)
    assert stages["b"]["wall"] == 4.0
    assert stages["b"]["cpu"] == 1.5


def test_load_report_json_unwraps_profile_key(tmp_path):
    doc = {
        "format": 1,
        "trace": "t.jsonl",
        "profile": {
            "stages": {"c": {"wall": 2.0, "cpu_user": 1.0, "cpu_sys": 0.0,
                             "maxrss_kb": 3, "status": "run"}},
        },
    }
    p = tmp_path / "report.json"
    p.write_text(json.dumps(doc))
    assert load_profile_stages(p)["c"]["wall"] == 2.0


def test_load_rejects_unrecognized_document(tmp_path):
    p = tmp_path / "junk.json"
    p.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ValueError):
        load_profile_stages(p)


# --------------------------------------------------------------------------- #
# Comparison.
# --------------------------------------------------------------------------- #


def test_identical_profiles_pass():
    base = _stages(a=2.0, b=3.0)
    lines, failures = compare_profiles(
        base, dict(base), wall_ratio=DEFAULT_WALL_RATIO,
        min_wall=DEFAULT_MIN_WALL,
    )
    assert not failures
    assert {ln.kind for ln in lines} == {"ok"}


def test_wall_regression_fails():
    lines, failures = compare_profiles(
        _stages(a=2.0, b=3.0), _stages(a=2.0, b=9.0),
        wall_ratio=1.25, min_wall=0.5,
    )
    assert failures == ["b"]
    detail = next(ln.detail for ln in lines if ln.stage == "b")
    assert "3.00x" in detail


def test_min_wall_noise_floor_skips_fast_stages():
    # 10x regression, but both sides under the floor: noise, not signal.
    lines, failures = compare_profiles(
        _stages(tiny=0.01), _stages(tiny=0.1),
        wall_ratio=1.25, min_wall=0.5,
    )
    assert not failures
    assert lines[0].kind == "skipped"


def test_missing_and_new_stages_are_informational():
    lines, failures = compare_profiles(
        _stages(old=2.0), _stages(new=2.0),
        wall_ratio=1.25, min_wall=0.5,
    )
    assert not failures
    kinds = {ln.stage: ln.kind for ln in lines}
    assert kinds == {"old": "missing", "new": "new"}


def test_cpu_and_rss_gates_only_when_enabled():
    base = _stages(a=2.0)
    cur = {"a": {"wall": 2.0, "cpu": 10.0, "maxrss_kb": 99000,
                 "status": "run"}}
    _, off = compare_profiles(base, cur, wall_ratio=1.25, min_wall=0.5)
    assert not off
    lines, on = compare_profiles(
        base, cur, wall_ratio=1.25, cpu_ratio=1.5, rss_ratio=1.5,
        min_wall=0.5,
    )
    assert on == ["a"]
    assert any(ln.kind == "regressed" and "cpu" in ln.detail for ln in lines)


def test_render_diff_summarises():
    lines, failures = compare_profiles(
        _stages(a=2.0, tiny=0.01), _stages(a=9.0, tiny=0.01),
        wall_ratio=1.25, min_wall=0.5,
    )
    text = render_diff(lines, failures)
    assert "1 regression(s)" in text
    assert "1 under the noise floor" in text


# --------------------------------------------------------------------------- #
# CLI exit codes.
# --------------------------------------------------------------------------- #


def _write_profile(path, **walls):
    doc = {"format": 1, "stages": {
        name: {"wall": w, "cpu_user": w, "cpu_sys": 0.0,
               "maxrss_kb": 100, "status": "run"}
        for name, w in walls.items()
    }}
    path.write_text(json.dumps(doc))
    return path


def test_cli_diff_ok_exit_zero(tmp_path, capsys):
    base = _write_profile(tmp_path / "base.json", a=2.0)
    cur = _write_profile(tmp_path / "cur.json", a=2.0)
    assert obs_main(["diff", str(base), str(cur)]) == 0


def test_cli_diff_regression_exit_one(tmp_path, capsys):
    base = _write_profile(tmp_path / "base.json", a=2.0)
    cur = _write_profile(tmp_path / "cur.json", a=9.0)
    assert obs_main(["diff", str(base), str(cur)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_diff_warn_only_exit_zero(tmp_path, capsys):
    base = _write_profile(tmp_path / "base.json", a=2.0)
    cur = _write_profile(tmp_path / "cur.json", a=9.0)
    assert obs_main(["diff", str(base), str(cur), "--warn-only"]) == 0


def test_cli_diff_unreadable_exit_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    cur = _write_profile(tmp_path / "cur.json", a=2.0)
    assert obs_main(["diff", str(bad), str(cur)]) == 2
