"""Report rendering: self/cum aggregation, tree assembly, the CLI."""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import METRICS, annotate, span
from repro.obs import trace
from repro.obs.__main__ import main as obs_main
from repro.obs.report import (
    TraceData,
    aggregate_spans,
    latest_trace,
    render_report,
    span_tree,
)


def _span(name, sid, parent, ts, dur, ok=True):
    return {
        "t": "span", "name": name, "id": sid, "parent": parent,
        "pid": 1, "ts": ts, "dur": dur, "ok": ok,
    }


def test_aggregate_self_time_subtracts_direct_children():
    spans = [
        _span("child", "1.2", "1.1", 0.1, 0.3),
        _span("child", "1.3", "1.1", 0.5, 0.2),
        _span("root", "1.1", None, 0.0, 1.0),
    ]
    by_name = {a.name: a for a in aggregate_spans(spans)}
    assert by_name["root"].cum == 1.0
    assert abs(by_name["root"].self_time - 0.5) < 1e-12
    assert by_name["child"].calls == 2
    assert abs(by_name["child"].cum - 0.5) < 1e-12


def test_aggregate_clamps_overlapping_parallel_children():
    """Workers' child spans can sum past the parent's wall time."""
    spans = [
        _span("task", "1.2", "1.1", 0.0, 0.9),
        _span("task", "1.3", "1.1", 0.0, 0.9),
        _span("pool", "1.1", None, 0.0, 1.0),
    ]
    by_name = {a.name: a for a in aggregate_spans(spans)}
    assert by_name["pool"].self_time == 0.0


def test_span_tree_depths_and_orphans():
    spans = [
        _span("root", "1.1", None, 0.0, 1.0),
        _span("mid", "1.2", "1.1", 0.1, 0.5),
        _span("leaf", "1.3", "1.2", 0.2, 0.1),
        _span("orphan", "2.9", "2.1", 0.3, 0.2),  # parent never recorded
    ]
    tree = span_tree(spans)
    depths = {rec["name"]: depth for depth, rec in tree}
    assert depths == {"root": 0, "mid": 1, "leaf": 2, "orphan": 0}
    assert len(tree) == 4


def test_render_report_table_cache_and_failures(tmp_path):
    data = TraceData(
        path=tmp_path / "x.jsonl",
        manifest={
            "t": "manifest", "run_id": "r1", "argv": ["prog"],
            "platform": "linux", "versions": {"python": "3.11"},
            "env": {"REPRO_FAST": "1"},
        },
        spans=[
            _span("work", "1.1", None, 0.0, 2.0),
            _span("broken", "1.2", "1.1", 0.5, 0.1, ok=False)
            | {"err": "ValueError: nope"},
        ],
        metrics=[
            {
                "t": "metrics", "pid": 1, "worker": False,
                "values": {
                    "features.cache.hits": 3,
                    "features.cache.disk_hits": 1,
                    "features.cache.misses": 4,
                    "campaign.cache.hits": 1,
                },
            },
            {
                "t": "metrics", "pid": 2, "worker": True,
                "values": {"features.cache.misses": 2},
            },
        ],
    )
    out = render_report(data, tree=True)
    assert "run:      r1" in out
    assert "REPRO_FAST=1" in out
    assert "work" in out and "broken" in out
    # 3 memo + 1 disk out of 10 total accesses across both processes.
    assert "feature cache: 3 memo hits, 1 disk hits, 6 builds (40.0% hit rate)" in out
    assert "campaign cache: 1 hits, 0 generations" in out
    assert "1 span(s) ended in an exception:" in out
    assert "broken: ValueError: nope" in out
    assert "  broken" in out  # tree indentation


def test_merged_metrics_histograms_combine_min_max():
    data = TraceData(
        path=Path("x"),
        metrics=[
            {"values": {"h": {"count": 2, "total": 3.0, "min": 1.0, "max": 2.0}}},
            {"values": {"h": {"count": 1, "total": 0.5, "min": 0.5, "max": 0.5}}},
        ],
    )
    merged = data.merged_metrics()
    assert merged["h"]["count"] == 3
    assert merged["h"]["total"] == 3.5
    assert merged["h"]["min"] == 0.5
    assert merged["h"]["max"] == 2.0


def test_latest_trace_picks_newest(tmp_path):
    assert latest_trace(tmp_path) is None
    old = tmp_path / "a.jsonl"
    new = tmp_path / "b.jsonl"
    old.write_text("{}\n")
    new.write_text("{}\n")
    import os

    os.utime(old, (1, 1))
    assert latest_trace(tmp_path) == new


def _write_real_trace(tmp_path) -> Path:
    path = tmp_path / "real.jsonl"
    trace.start_run("clitest", path=path)
    with span("cli.work", n=2):
        annotate(campaign_fingerprint="deadbeef")
        METRICS.counter("features.cache.hits").inc()
    trace.end_run()
    return path


def test_cli_report_on_file(tmp_path, clean_trace_state, capsys):
    path = _write_real_trace(tmp_path)
    assert obs_main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "cli.work" in out
    assert "campaign_fingerprint=deadbeef" in out
    assert "self %" in out


def test_cli_report_on_directory(tmp_path, clean_trace_state, capsys):
    _write_real_trace(tmp_path)
    assert obs_main(["report", str(tmp_path)]) == 0
    assert "cli.work" in capsys.readouterr().out


def test_cli_report_tree_flag(tmp_path, clean_trace_state, capsys):
    path = _write_real_trace(tmp_path)
    assert obs_main(["report", str(path), "--tree"]) == 0
    assert "cli.work  " in capsys.readouterr().out


def test_cli_report_empty_dir_fails(tmp_path, capsys):
    assert obs_main(["report", str(tmp_path)]) == 1
    assert "no traces" in capsys.readouterr().err


def test_cli_report_missing_file_fails(tmp_path, capsys):
    assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 1
    assert "no such trace" in capsys.readouterr().err


def test_cli_default_uses_trace_dir(tmp_path, clean_trace_state, monkeypatch, capsys):
    monkeypatch.setenv(trace.TRACE_DIR_ENV, str(tmp_path))
    _write_real_trace(tmp_path)
    assert obs_main(["report"]) == 0
    assert "cli.work" in capsys.readouterr().out


def test_report_output_is_json_free(tmp_path, clean_trace_state, capsys):
    """The report is the human view; raw JSON stays in the file."""
    path = _write_real_trace(tmp_path)
    obs_main(["report", str(path)])
    out = capsys.readouterr().out
    assert not any(line.startswith("{") for line in out.splitlines())
    # ... while the trace itself is line-delimited JSON.
    for line in path.read_text().splitlines():
        json.loads(line)


# --------------------------------------------------------------------------- #
# Critical path, profile summary, and the JSON report.
# --------------------------------------------------------------------------- #


def _dag_trace(tmp_path, cell=None):
    """A three-stage chain (a -> b -> c) plus an off-path hit."""
    prof = {"cpu_user": 1.0, "cpu_sys": 0.1, "maxrss_kb": 64,
            "gc_collections": 0}

    def stage(name, sid, ts, dur):
        attrs = {"stage": name}
        if cell:
            attrs["cell"] = cell
        rec = _span("graph.stage", sid, "1.1", ts, dur)
        rec["attrs"] = attrs
        rec["prof"] = dict(prof)
        return rec

    run = _span("graph.run", "1.1", None, 0.0, 10.0)
    if cell:
        run["attrs"] = {"cell": cell}
    return TraceData(
        path=tmp_path / "dag.jsonl",
        spans=[
            run,
            stage("a", "1.2", 0.0, 2.0),
            stage("b", "1.3", 2.0, 5.0),
            stage("c", "1.4", 7.0, 1.0),
        ],
        events=[{
            "t": "event", "name": "graph.plan",
            "attrs": {
                "cell": cell,
                "stages": [
                    {"name": "warm", "status": "hit", "inputs": [],
                     "load_s": 0.1},
                    {"name": "a", "status": "miss", "inputs": []},
                    {"name": "b", "status": "miss", "inputs": ["a", "warm"]},
                    {"name": "c", "status": "miss", "inputs": ["b"]},
                ],
            },
        }],
    )


def test_critical_path_follows_dominant_chain(tmp_path):
    from repro.obs.report import critical_paths

    (cp,) = critical_paths(_dag_trace(tmp_path))
    assert [st["name"] for st in cp["chain"]] == ["a", "b", "c"]
    assert abs(cp["chain_wall"] - 8.0) < 1e-9
    assert cp["root_wall"] == 10.0
    # The cheap hit is not on the path even though b depends on it.
    assert all(st["name"] != "warm" for st in cp["chain"])


def test_critical_path_render_names_cell(tmp_path):
    from repro.obs.report import render_critical_path

    out = render_critical_path(_dag_trace(tmp_path, cell="df+/valiant"))
    assert "cell df+/valiant" in out
    assert "3 of 4 stages" in out
    assert "[run ]" in out


def test_critical_path_without_plan_events(tmp_path):
    from repro.obs.report import render_critical_path

    data = TraceData(path=tmp_path / "x.jsonl",
                     spans=[_span("work", "1.1", None, 0.0, 1.0)])
    assert "no graph.plan events" in render_critical_path(data)


def test_report_renders_profile_summary_and_per_cell_cache(tmp_path):
    data = _dag_trace(tmp_path, cell="df+/valiant")
    data.metrics = [{
        "t": "metrics", "pid": 1, "worker": False,
        "values": {
            "graph.stage.hit": 2, "graph.stage.run": 3,
            "graph.stage.hit[df+/valiant]": 2,
            "graph.stage.run[df+/valiant]": 3,
        },
    }]
    out = render_report(data)
    assert "profiled stages" in out
    assert "b@df+/valiant" in out
    assert "cell df+/valiant: 2 artifact hits" in out


def test_report_warns_on_truncated_trace(tmp_path):
    data = _dag_trace(tmp_path)
    data.truncated = [{"t": "truncated", "size_bytes": 2048,
                       "limit_mb": 0.001}]
    assert "truncated" in render_report(data)


def test_cli_report_critical_path_flag(tmp_path, clean_trace_state, capsys):
    path = _write_real_trace(tmp_path)
    assert obs_main(["report", str(path), "--critical-path"]) == 0
    # This trace has no DAG run, so the flag explains what is missing.
    assert "no graph.plan events" in capsys.readouterr().out


def test_cli_report_json_format(tmp_path, clean_trace_state, capsys):
    path = _write_real_trace(tmp_path)
    assert obs_main(["report", str(path), "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["format"] == 1
    assert doc["run_id"].endswith("clitest")
    assert any(s["name"] == "cli.work" for s in doc["spans"])
    assert "metrics" in doc and "critical_path" in doc


def test_cli_report_json_critical_path_narrows(tmp_path, clean_trace_state, capsys):
    path = _write_real_trace(tmp_path)
    assert obs_main(
        ["report", str(path), "--format", "json", "--critical-path"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc) == {"critical_path"}
