"""Resource profiler: sampling, aggregation, and the out-of-band rule."""

from __future__ import annotations

import json

from repro.graph import stage_fn
from repro.obs import METRICS, profiled_span, span, trace
from repro.obs.profile import (
    build_profile,
    profile_requested,
    stage_key,
    write_profile_json,
    write_run_profile,
)
from repro.obs.report import TraceData, load_trace

from tests.obs.conftest import read_records


def _profile_on(monkeypatch):
    monkeypatch.setenv(trace.PROFILE_ENV, "1")
    trace._refresh_gate()


def test_profiled_span_attaches_resource_deltas(trace_file, monkeypatch):
    _profile_on(monkeypatch)
    with profiled_span("graph.stage", stage="work"):
        sum(i * i for i in range(100000))
    trace.end_run()
    recs = [r for r in read_records(trace_file) if r.get("t") == "span"]
    assert len(recs) == 1
    prof = recs[0]["prof"]
    assert set(prof) >= {"cpu_user", "cpu_sys", "maxrss_kb", "gc_collections"}
    assert prof["maxrss_kb"] > 0
    assert prof["cpu_user"] >= 0.0


def test_profiled_span_reports_cache_deltas(trace_file, monkeypatch):
    _profile_on(monkeypatch)
    with profiled_span("graph.stage", stage="cachy"):
        METRICS.counter("features.cache.misses").inc(2)
    trace.end_run()
    recs = [r for r in read_records(trace_file) if r.get("t") == "span"]
    assert recs[0]["prof"]["cache"]["features.cache.misses"] == 2


def test_no_prof_field_without_profile_env(trace_file, monkeypatch):
    monkeypatch.delenv(trace.PROFILE_ENV, raising=False)
    assert not profile_requested()
    with profiled_span("graph.stage", stage="plain"):
        pass
    trace.end_run()
    recs = [r for r in read_records(trace_file) if r.get("t") == "span"]
    # Same record schema as a plain span: profiling off adds nothing.
    assert "prof" not in recs[0]


def test_profiled_span_noop_when_tracing_off(clean_trace_state, monkeypatch):
    monkeypatch.delenv(trace.PROFILE_ENV, raising=False)
    trace._refresh_gate()
    with profiled_span("anything") as sp:
        assert sp is span("x")  # the shared no-op instance
    assert trace.current_trace_path() is None


def test_profile_env_implies_tracing(tmp_path, clean_trace_state, monkeypatch):
    """REPRO_PROFILE=1 alone must open a sink: prof records need one."""
    monkeypatch.setenv(trace.PROFILE_ENV, "1")
    monkeypatch.setenv(trace.TRACE_DIR_ENV, str(tmp_path))
    trace._refresh_gate()
    assert trace.trace_requested()
    with profiled_span("auto.profiled"):
        pass
    path = trace.current_trace_path()
    assert path is not None
    trace.end_run()
    recs = [r for r in read_records(path) if r.get("t") == "span"]
    assert recs and "prof" in recs[0]


def test_end_run_writes_profile_json(tmp_path, clean_trace_state, monkeypatch):
    monkeypatch.setenv(trace.PROFILE_ENV, "1")
    trace._refresh_gate()
    path = tmp_path / "run.jsonl"
    trace.start_run("proftest", path=path)
    with profiled_span("graph.stage", stage="alpha"):
        pass
    trace.end_run()
    out = tmp_path / "run.profile.json"
    assert out.exists()
    prof = json.loads(out.read_text())
    assert "alpha" in prof["stages"]
    assert prof["stages"]["alpha"]["calls"] == 1


def test_stage_key_qualifies_cell():
    assert stage_key("rfe:AMG-128", None) == "rfe:AMG-128"
    assert stage_key("rfe:AMG-128", "df+/valiant") == "rfe:AMG-128@df+/valiant"


def _span_rec(name, sid, parent, dur, attrs=None, prof=None):
    rec = {
        "t": "span", "name": name, "id": sid, "parent": parent,
        "pid": 1, "ts": 0.0, "dur": dur, "ok": True,
    }
    if attrs:
        rec["attrs"] = attrs
    if prof:
        rec["prof"] = prof
    return rec


def test_build_profile_aggregates_stages_and_joins_plan(tmp_path):
    prof = {"cpu_user": 1.0, "cpu_sys": 0.5, "maxrss_kb": 100,
            "gc_collections": 2}
    data = TraceData(
        path=tmp_path / "t.jsonl",
        spans=[
            _span_rec("graph.run", "1.1", None, 10.0, prof=dict(prof)),
            _span_rec("graph.stage", "1.2", "1.1", 4.0,
                      attrs={"stage": "a"}, prof=dict(prof)),
            _span_rec("graph.stage", "1.3", "1.1", 2.0,
                      attrs={"stage": "a"}, prof=dict(prof)),
            _span_rec("graph.stage", "1.4", "1.1", 3.0,
                      attrs={"stage": "b", "cell": "df+/valiant"},
                      prof=dict(prof)),
        ],
        events=[
            {"t": "event", "name": "graph.plan", "attrs": {
                "cell": None,
                "stages": [
                    {"name": "warm", "status": "hit", "inputs": [],
                     "load_s": 0.25},
                    {"name": "a", "status": "miss", "inputs": ["warm"]},
                ],
            }},
        ],
    )
    out = build_profile(data)
    assert out["stages"]["a"]["calls"] == 2
    assert abs(out["stages"]["a"]["wall"] - 6.0) < 1e-9
    assert abs(out["stages"]["a"]["cpu_user"] - 2.0) < 1e-9
    assert out["stages"]["a"]["status"] == "run"
    # Cell-qualified key for the non-default cell.
    assert out["stages"]["b@df+/valiant"]["cell"] == "df+/valiant"
    # The hit enters from the plan event with its timed load.
    assert out["stages"]["warm"] == {
        "calls": 1, "wall": 0.25, "cpu_user": 0.0, "cpu_sys": 0.0,
        "maxrss_kb": 0, "gc_collections": 0, "cache": {},
        "stage": "warm", "cell": None, "status": "hit",
    }
    assert out["root"] == {"name": "graph.run", "wall": 10.0}
    assert out["cells"]["default"]["stages"] == 2
    assert out["cells"]["df+/valiant"]["stages"] == 1


def test_build_profile_none_without_prof_records(tmp_path):
    data = TraceData(
        path=tmp_path / "t.jsonl",
        spans=[_span_rec("plain", "1.1", None, 1.0)],
    )
    assert build_profile(data) is None


def test_write_profile_json_skips_unprofiled_trace(
    tmp_path, clean_trace_state
):
    path = tmp_path / "t.jsonl"
    trace.start_run("noprof", path=path)
    with span("plain"):
        pass
    trace.end_run()
    assert write_profile_json(path) is None
    assert not (tmp_path / "t.profile.json").exists()


def test_write_run_profile_lands_in_store_profiles_dir(
    tmp_path, clean_trace_state, monkeypatch
):
    monkeypatch.setenv(trace.PROFILE_ENV, "1")
    trace._refresh_gate()
    path = tmp_path / "t.jsonl"
    trace.start_run("runprof", path=path)
    with profiled_span("graph.stage", stage="s"):
        pass
    # The runner parses the flushed shared file mid-run.
    out = write_run_profile(tmp_path / "store", path)
    trace.end_run()
    assert out == tmp_path / "store" / "_profiles" / "t.json"
    assert "s" in json.loads(out.read_text())["stages"]


@stage_fn(version=1)
def _emit(ctx):
    return {"v": sorted(range(ctx.params["n"]))}


def test_profiling_keeps_experiment_results_byte_identical(
    tmp_path, clean_trace_state, monkeypatch
):
    """The out-of-band rule: prof data changes the trace, not results."""
    from repro.graph import ArtifactStore, Graph, GraphRunner

    monkeypatch.setenv(trace.TRACE_DIR_ENV, str(tmp_path / "traces"))

    def run_once(profile: bool):
        if profile:
            monkeypatch.setenv(trace.PROFILE_ENV, "1")
        else:
            monkeypatch.delenv(trace.PROFILE_ENV, raising=False)
        trace._refresh_gate()
        g = Graph()
        g.add("emit", _emit, params={"n": 64})
        store = ArtifactStore(root=tmp_path / f"store-{profile}", enabled=True)
        runner = GraphRunner(g, store=store, campaign_fingerprint=None)
        out = runner.run(["emit"])
        trace.end_run()
        return json.dumps(out, sort_keys=True)

    assert run_once(False) == run_once(True)
