"""Shared fixtures: a tiny dragonfly and helpers used across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY, rng_for
from repro.network.engine import CongestionEngine
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.routing import AdaptiveRouter


@pytest.fixture(scope="session")
def tiny_topo() -> DragonflyTopology:
    """6 groups x (4x3) routers x 2 nodes = 144 nodes."""
    return DragonflyTopology.from_preset(TINY)


@pytest.fixture(scope="session")
def tiny_router(tiny_topo) -> AdaptiveRouter:
    return AdaptiveRouter(tiny_topo)


@pytest.fixture(scope="session")
def tiny_engine(tiny_topo) -> CongestionEngine:
    return CongestionEngine(tiny_topo)


@pytest.fixture(autouse=True)
def _no_artifact_cache(request, monkeypatch):
    """Keep stage memoization out of tests that don't opt into it.

    Experiment drivers persist stage outputs to the artifact store; a
    test exercising computation must not silently read a prior test's
    (or a developer's) cache.  Graph/golden tests opt back in with the
    ``artifact_cache`` marker against a private REPRO_CACHE_DIR.
    """
    if request.node.get_closest_marker("artifact_cache"):
        return
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "0")


@pytest.fixture()
def rng() -> np.random.Generator:
    return rng_for("tests")


@pytest.fixture(scope="session")
def tiny_campaign():
    """One shared test-scale campaign (a few seconds to generate)."""
    from repro.campaign.runner import CampaignConfig, CampaignRunner

    cfg = CampaignConfig.tiny(use_cache=False)
    return CampaignRunner(cfg).run()
