"""Shared fixtures: a tiny dragonfly and helpers used across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY, rng_for
from repro.network.engine import CongestionEngine
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.routing import AdaptiveRouter


@pytest.fixture(scope="session")
def tiny_topo() -> DragonflyTopology:
    """6 groups x (4x3) routers x 2 nodes = 144 nodes."""
    return DragonflyTopology.from_preset(TINY)


@pytest.fixture(scope="session")
def tiny_router(tiny_topo) -> AdaptiveRouter:
    return AdaptiveRouter(tiny_topo)


@pytest.fixture(scope="session")
def tiny_engine(tiny_topo) -> CongestionEngine:
    return CongestionEngine(tiny_topo)


@pytest.fixture()
def rng() -> np.random.Generator:
    return rng_for("tests")


@pytest.fixture(scope="session")
def tiny_campaign():
    """One shared test-scale campaign (a few seconds to generate)."""
    from repro.campaign.runner import CampaignConfig, CampaignRunner

    cfg = CampaignConfig.tiny(use_cache=False)
    return CampaignRunner(cfg).run()
