"""Congestion-aware scheduling what-if (the paper's §V-A suggestion).

The paper concludes that a resource manager could delay communication-
sensitive jobs while known aggressors run.  This example quantifies that
opportunity on campaign data: how much slower are runs that overlapped
an identified aggressor, and what fraction of machine time a delay-aware
scheduler could recover net of queueing overhead.

Run:  python examples/scheduling_whatif.py          (~1 minute)
      REPRO_FAST=1 runs it against the shared 6-day test campaign.
"""

from repro.analysis.whatif import scheduling_whatif
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.experiments.context import fast_requested


def main() -> None:
    if fast_requested():
        cfg = CampaignConfig.tiny()
    else:
        cfg = CampaignConfig.tiny(days=12.0)
    print("generating campaign (cached after first run)...")
    camp = run_campaign(cfg)

    results = scheduling_whatif(camp)
    if results:
        print(f"\nidentified aggressors: {results[0].aggressors}\n")
    header = (
        f"{'dataset':14s} {'heavy':>6s} {'light':>6s} {'t_heavy':>8s} "
        f"{'t_light':>8s} {'saving':>7s} {'net':>6s} {'corr':>6s}"
    )
    print(header)
    print("-" * len(header))
    for r in results:
        print(
            f"{r.key:14s} {r.runs_overlapped:6d} {r.runs_clean:6d} "
            f"{r.mean_time_overlapped:8.1f} {r.mean_time_clean:8.1f} "
            f"{r.saving_fraction:6.1%} {r.net_saving_fraction:5.1%} "
            f"{r.aggressor_time_correlation:+6.2f}"
        )
    print(
        "\n'heavy'/'light' = runs with above/below-median aggressor count;"
        "\n'saving' = per-run slowdown attributable to heavy neighbourhoods;"
        "\n'net'    = machine-time recoverable by delay-aware scheduling"
        "\n           after charging a 5% queue-delay overhead;"
        "\n'corr'   = correlation of aggressor count with run time."
    )


if __name__ == "__main__":
    main()
