"""Forecasting future time steps with attention (paper §V-C, Figs. 10/12).

Trains the scalar-dot-product-attention forecaster on a MILC dataset and

1. reports MAPE for two feature tiers (job-local counters vs + system-wide
   LDMS features), and
2. forecasts an unseen long MILC run segment by segment.

Run:  python examples/forecast_milc.py          (~2-3 minutes)
      REPRO_FAST=1 runs it against the shared 6-day test campaign.
"""

from repro.analysis.forecasting import forecast_mape, long_run_forecast
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.experiments.context import fast_requested, long_run_key
from repro.ml.attention import AttentionForecaster

#: Fewer training epochs under REPRO_FAST=1 — accuracy degrades but the
#: pipeline (feature tiers, segment forecasting) is exercised end to end.
EPOCHS = 12 if fast_requested() else 100


def model(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(d_model=16, hidden=32, epochs=EPOCHS, seed=seed)


def main() -> None:
    if fast_requested():
        cfg = CampaignConfig.tiny()
    else:
        cfg = CampaignConfig.tiny(days=12.0)
    print("generating campaign (cached after first run)...")
    camp = run_campaign(cfg)
    ds = camp["MILC-128"]

    m, k = 10, 20
    print(f"\nforecasting the aggregate time of the next k={k} steps "
          f"from the last m={m} steps ({len(ds)} runs):")
    for tier in ("app", "app+placement+io+sys"):
        res = forecast_mape(ds, m=m, k=k, tier=tier, n_splits=2, model_factory=model)
        print(f"  features={tier:22s} MAPE = {res.mape:5.2f}%")

    lkey = long_run_key(camp)
    long_run = camp[lkey].runs[0]
    print(f"\nforecasting the unseen long run {lkey} "
          f"({len(long_run.step_times)} steps) in 20-step segments:")
    fc = long_run_forecast(
        ds, long_run, m=10, k=20, tier="app+placement+io+sys", model_factory=model
    )
    for s, obs, pred in zip(fc.segment_starts, fc.observed, fc.predicted):
        print(f"  steps {s:3d}-{s + 19:3d}: observed {obs:7.1f}s  "
              f"predicted {pred:7.1f}s")
    print(f"segment MAPE: {fc.mape:.2f}%")


if __name__ == "__main__":
    main()
