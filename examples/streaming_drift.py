"""Longitudinal streaming: shard-granular campaigns and model drift.

Generates a streamed campaign — an ordered sequence of time-window
shards, each an independent generation with its own content fingerprint
— and asks the operational question streaming exists for: *how fast does
a trained forecaster go stale?*  Every window is scored against a model
retrained on the previous window (**fresh**) and the model trained once
on window 0 (**stale**); the gap is the drift.

Re-running with one more window generates *only* that window: the
existing shards load from the per-window campaign cache, their feature
tensors from the per-shard feature cache.  The graph-memoized version of
the same numbers is ``python -m repro.campaign stream --drift``.

Run:  python examples/streaming_drift.py          (~1-2 minutes)
      REPRO_FAST=1 runs 2-day windows at test scale.
"""

from repro.campaign.runner import CampaignConfig
from repro.campaign.streaming import StreamConfig, render_stream, run_stream
from repro.experiments.context import fast_requested
from repro.experiments.report import ascii_table
from repro.ml import rolling_drift
from repro.ml.attention import AttentionForecaster

FAST = fast_requested()
WINDOW_DAYS = 2.0 if FAST else 4.0
M, K = (3, 2) if FAST else (8, 5)
EPOCHS = 40 if FAST else 100


def model(seed: int = 0) -> AttentionForecaster:
    return AttentionForecaster(d_model=12, hidden=24, epochs=EPOCHS, seed=seed)


def main() -> None:
    config = StreamConfig(
        base=CampaignConfig.tiny(),
        windows=3,
        window_days=WINDOW_DAYS,
    )
    print("generating stream (per-window cache: appends are incremental)...")
    campaign = run_stream(config)
    print(render_stream(campaign.stream))

    key = "MILC-128"
    report = rolling_drift(
        campaign[key], m=M, k=K, tier="app", seeds=(0, 1), model_factory=model
    )
    print(
        f"\n{key}: forecast MAPE per window (m={M}, k={K}; fresh = "
        "retrained on previous window, stale = window-0 model)"
    )
    print(
        ascii_table(
            ["window", "runs", "fresh MAPE", "stale MAPE", "drift"],
            report.rows(),
        )
    )
    print(f"mean drift (stale - fresh): {report.mean_drift:+.2f}% MAPE")


if __name__ == "__main__":
    main()
