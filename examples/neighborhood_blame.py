"""Assigning blame: which users slow our jobs down? (paper §V-A)

Generates a short campaign on a reduced machine, then runs the mutual-
information neighbourhood analysis and compares the blamed users against
the campaign's ground-truth aggressors (which the analysis never sees).

Run:  python examples/neighborhood_blame.py          (~1 minute)
      REPRO_FAST=1 runs it against the shared 6-day test campaign.
"""

from repro.analysis.neighborhood import (
    analyze_neighborhood,
    correlated_users_table,
    recovery_rate,
)
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.experiments.context import fast_requested


def campaign_config() -> CampaignConfig:
    """12-day test-scale campaign (~12 runs per dataset); under
    ``REPRO_FAST=1``, the shared 6-day campaign the test suite caches."""
    if fast_requested():
        return CampaignConfig.tiny()
    return CampaignConfig.tiny(days=12.0)


def main() -> None:
    cfg = campaign_config()
    print("generating campaign (cached after first run)...")
    camp = run_campaign(cfg)

    # Per-dataset MI ranking for one dataset, in detail.
    ds = camp["MILC-128"]
    analysis = analyze_neighborhood(ds)
    print(f"\n{ds.key}: {len(ds)} runs, {analysis.optimal_fraction:.0%} optimal")
    print("users ranked by mutual information with optimality:")
    for user, mi in analysis.ranked_users()[:8]:
        mark = "<- blamed" if user in analysis.top_users(9) else ""
        print(f"  {user:10s} MI={mi:.4f} {mark}")

    # The Table III construction across all six datasets.
    table = correlated_users_table(camp)
    print("\nTable III (users in >= 2 datasets' high-MI lists):")
    for key, users in table.items():
        print(f"  {key:14s} {users}")

    rate = recovery_rate(table, camp.ground_truth_aggressors)
    print(f"\nground-truth aggressors: {camp.ground_truth_aggressors}")
    print(f"recovery rate: {rate:.0%} of blamed users are true aggressors")


if __name__ == "__main__":
    main()
