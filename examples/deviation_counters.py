"""Which counters explain run-to-run variability? (paper §V-B, Fig. 9)

Runs the GBR + recursive-feature-elimination pipeline on two datasets of
a test-scale campaign and prints each counter's relevance score — the
per-application congestion signatures the paper identifies (router-tile
stalls for bandwidth-bound MILC, processor-tile stalls for small-message
AMG).

Run:  python examples/deviation_counters.py          (~2 minutes)
      REPRO_FAST=1 runs it against the shared 6-day test campaign.
"""

from repro.analysis.deviation import deviation_analysis
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.experiments.context import fast_requested


def main() -> None:
    fast = fast_requested()
    cfg = CampaignConfig.tiny() if fast else CampaignConfig.tiny(days=12.0)
    print("generating campaign (cached after first run)...")
    camp = run_campaign(cfg)

    for key in ("MILC-128", "AMG-128"):
        ds = camp[key]
        res = deviation_analysis(
            ds,
            n_splits=min(3 if fast else 6, len(ds)),
            max_samples=400 if fast else 1500,
        )
        print(f"\n{key}: deviation-model prediction MAPE = "
              f"{res.prediction_mape:.2f}% (paper target: < 5%)")
        print("counter relevance (likelihood of surviving RFE):")
        for name, score in sorted(
            res.scores_by_counter().items(), key=lambda kv: -kv[1]
        ):
            bar = "#" * int(round(score * 30))
            print(f"  {name:14s} {score:4.2f} {bar}")


if __name__ == "__main__":
    main()
