"""Quickstart: a probe job on a busy dragonfly, in ~30 lines of API.

Builds a small Cray-XC-style dragonfly, places a MILC-like probe job and
a noisy neighbour on it, solves the congestion state, and reads the same
Aries counters the paper collects — showing the causal chain the whole
study rests on: neighbour traffic -> link/NIC utilisation -> stalls ->
slowdown.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import rng_for
from repro.network.counters import synthesize_router_counters
from repro.network.engine import CongestionEngine
from repro.network.traffic import io_flows, router_alltoall_flows
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.placement import AllocationPolicy, allocate, placement_features


def main() -> None:
    # A 15-group dragonfly with a 12x4 router grid, 4 nodes per router.
    topo = DragonflyTopology.from_preset("small")
    print("topology:", topo.describe())
    from repro.topology.render import render_group

    print(render_group(topo, group=1))

    rng = rng_for("quickstart")
    engine = CongestionEngine(topo)

    # Our probe job: 128 nodes, fragmented placement (busy-system style).
    free = topo.compute_nodes
    ours = allocate(topo, free, 128, AllocationPolicy.RANDOM, rng)
    print("probe placement:", placement_features(topo, ours))

    probe = engine.route(router_alltoall_flows(topo, ours, total_bytes=30e9))

    # A HipMer-like neighbour: communication + heavy filesystem traffic.
    remaining = np.setdiff1d(free, ours)
    theirs = allocate(topo, remaining, 512, AllocationPolicy.RANDOM, rng)
    neighbour = engine.route(
        router_alltoall_flows(topo, theirs, total_bytes=400e9)
    )
    neighbour_io = engine.route(io_flows(topo, theirs, bytes_per_sec=150e9))

    # Solve the network twice: quiet machine vs busy machine.
    for label, items in [
        ("quiet ", [probe]),
        ("busy  ", [probe, neighbour, neighbour_io]),
    ]:
        state = engine.solve(items)
        fabric, endpoint = state.metrics[0].volume_weighted(probe.flows.volume)
        counters = synthesize_router_counters(state)
        routers = np.unique(topo.node_router(ours))
        stalls = counters["RT_RB_STL"][routers].sum()
        flits = counters["RT_FLIT_TOT"][routers].sum()
        print(
            f"{label}: fabric slowdown {fabric:5.2f}x, endpoint {endpoint:5.2f}x, "
            f"job-router RT_RB_STL {stalls:9.3g}/s, RT_FLIT_TOT {flits:9.3g}/s"
        )

    print(
        "\nThe busy-machine run shows elevated stall counters on the probe's"
        "\nrouters and a fabric slowdown >1 — the signal the paper's models"
        "\nlearn from."
    )


if __name__ == "__main__":
    main()
