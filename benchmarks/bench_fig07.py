"""Bench: Fig. 7 — mean counter trends mirror the mean time trend (AMG).

Shape target: strong positive correlation between the mean per-step trend
of the traffic/stall counters and the mean time-per-step trend — the
paper's justification for mean-centering before deviation modelling.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("fig07")
def test_fig07_counter_trends(once, campaign):
    res = once(run_experiment, "fig07", campaign=campaign)
    print("\n" + res.render())
    corr = res.data["correlations"]
    assert corr["RT_FLIT_TOT"] > 0.8
    assert corr["RT_RB_STL"] > 0.6
    assert corr["PT_FLIT_TOT"] > 0.8
