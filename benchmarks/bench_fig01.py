"""Bench: Fig. 1 — relative performance over the campaign.

Shape targets: every 128-node app shows run-to-run spread; the worst
observed run is >= 1.5x the best for at least one app (paper: up to ~3x).
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("fig01")
def test_fig01_relative_performance(once, campaign, fast):
    res = once(run_experiment, "fig01", campaign=campaign)
    print("\n" + res.render())
    series = res.data["series"]
    assert len(series) == 4
    worst = {k: float(s["relative"].max()) for k, s in series.items()}
    assert all(v >= 1.0 for v in worst.values())
    if not fast:
        assert max(worst.values()) >= 1.5
