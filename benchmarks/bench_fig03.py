"""Bench: Fig. 3 — mean time-per-step behaviour of the six datasets.

Shape targets: MILC's 20 warmup steps are much faster than the next 60;
AMG runs slower per step at 512 nodes than at 128 (weak scaling); each
dataset's step count matches the paper.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("fig03")
def test_fig03_mean_step_trends(once, campaign):
    res = once(run_experiment, "fig03", campaign=campaign)
    print("\n" + res.render())
    trends = res.data["trends"]
    assert len(trends["AMG-128"]) == 20
    assert len(trends["MILC-128"]) == 80
    assert len(trends["miniVite-128"]) == 6
    assert len(trends["UMT-128"]) == 7
    assert trends["MILC-128"][:20].mean() < 0.6 * trends["MILC-128"][20:].mean()
    assert trends["AMG-512"].mean() > trends["AMG-128"].mean()
