"""Bench: Fig. 12 — forecasting 40-step segments of the 620-step MILC run.

Shape targets: predictions track the observed segment times of a run the
model never saw (trained only on the regular 80-step dataset); errors stay
bounded, with occasional biased segments (the paper's "irreducible bias").
"""

import numpy as np
import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("fig12")
def test_fig12_long_run_forecast(once, campaign, fast):
    res = once(run_experiment, "fig12", campaign=campaign, fast=fast)
    print("\n" + res.render())
    obs = np.asarray(res.data["observed"])
    pred = np.asarray(res.data["predicted"])
    assert len(obs) == len(pred) >= 3
    assert (obs > 0).all() and (pred > 0).all()
    # Same scale: predictions within a factor 2 of observations everywhere.
    ratio = pred / obs
    assert (ratio > 0.5).all() and (ratio < 2.0).all()
    if not fast:
        assert len(obs) >= 10  # 620 steps / 40-step segments
        assert res.data["mape"] < 15.0
        # Tracking, not just scale: predictions correlate with observations
        # across segments when the run varies enough for correlation to be
        # meaningful (this particular long run is fairly steady: ~3% CoV).
        if obs.std() > 0.05 * obs.mean():
            r = float(np.corrcoef(obs, pred)[0, 1])
            assert r > 0.2
