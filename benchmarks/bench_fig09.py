"""Bench: Fig. 9 — RFE relevance of each counter per dataset.

Shape targets (paper §V-B): deviation-model prediction MAPE < 5% on every
dataset; stall counters outrank traffic counters for the congestion-driven
codes (RT_RB_STL for MILC, PT stalls for AMG/UMT); flit counters dominate
for miniVite, whose own data-dependent volume drives its variability.
"""

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.network.counters import APP_COUNTERS


@pytest.mark.paper_artifact("fig09")
def test_fig09_deviation_relevance(once, campaign, fast):
    res = once(run_experiment, "fig09", campaign=campaign, fast=fast)
    print("\n" + res.render())
    scores = res.data["scores"]
    keys = res.data["keys"]
    assert scores.shape == (len(keys), len(APP_COUNTERS))
    if fast:
        return
    for key, err in res.data["mape"].items():
        # Paper: < 5%.  miniVite's intrinsic workload variation puts it
        # slightly above on this substrate (see EXPERIMENTS.md).
        assert err < 6.5, f"{key}: MAPE {err:.2f}%"

    def score(key, counter):
        return scores[keys.index(key)][APP_COUNTERS.index(counter)]

    def rank(key, counter):
        row = scores[keys.index(key)]
        order = list(np.argsort(-row, kind="stable"))
        return order.index(APP_COUNTERS.index(counter))

    # MILC: router-tile stall family highly relevant (many collinear
    # counters tie at 1.0, so scores are more stable than strict ranks).
    for key in ("MILC-128", "MILC-512"):
        assert max(score(key, "RT_RB_STL"), score(key, "RT_RB_2X_USG")) >= 0.8
    assert rank("MILC-512", "RT_RB_STL") < 4
    # AMG / UMT: endpoint (processor-tile) stall counters top-tier.
    assert max(score("AMG-128", c) for c in ("PT_RB_STL_RQ", "PT_RB_2X_USG", "PT_CB_STL_RQ")) >= 0.9
    assert score("UMT-128", "PT_RB_STL_RQ") >= 0.9
    # miniVite: flit counters among the top predictors.
    assert min(rank("miniVite-128", c) for c in ("PT_FLIT_VC0", "RT_FLIT_TOT", "PT_FLIT_TOT", "PT_FLIT_VC4")) < 4
