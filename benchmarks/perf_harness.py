"""Perf-regression harness: timed figure drivers across worker counts.

Emits one ``BENCH_<name>.json`` per benched driver with the wall time at
every requested worker count, a machine calibration factor, and the
dataset fingerprint — the file committed under ``benchmarks/baselines/``
is the regression reference that :mod:`benchmarks.compare_bench` gates CI
against.

Wall times are not portable across machines, so each run also times a
fixed single-core calibration workload (a GBR fit on synthetic data) and
reports ``normalized_wall = wall / calibration``.  The CI gate compares
*normalized* serial walls, which cancels raw CPU speed; the measured
multi-worker speedup is recorded for information (it depends on the
runner's core count and is not gated).

Usage::

    PYTHONPATH=src python -m benchmarks.perf_harness --fast \
        --bench fig09 --workers 1,4 --out benchmarks/baselines

The campaign is generated (or loaded from the disk cache) once before
timing, and the per-dataset feature caches are cleared before every timed
run so each worker-count configuration is measured cold-for-cold.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.campaign.runner import run_campaign
from repro.experiments import PAPER_EXPERIMENTS, run_experiment, run_experiments
from repro.experiments.context import experiment_config
from repro.features import clear_feature_caches
from repro.parallel import shutdown_pool

#: Drivers worth gating: the RFE sweep (fig09), both ablation grids
#: (fig08/fig10), the per-dataset MI table (table03), the warm second
#: `all` pass (the stage graph's near-pure cache read), cold campaign
#: generation on a non-default (topology, routing) cell, and the
#: streaming append (one-window generation + shard-scoped retrain).
BENCHES = [
    "fig09", "fig08", "fig10", "table03",
    "warm_all", "campaign_cold", "stream_append",
]

#: The cell ``campaign_cold`` generates on.  Pinned off the default so
#: the scenario times the registry-built path (Dragonfly+ geometry +
#: pinned-Valiant solve) and never touches the shared default cache.
CAMPAIGN_COLD_CELL = ("df+", "valiant")


def calibrate() -> float:
    """Seconds for a fixed single-core GBR workload (machine speed unit)."""
    from repro.ml.gbr import GradientBoostedRegressor

    rng = np.random.default_rng(0)
    x = rng.normal(size=(2000, 12))
    y = x[:, 0] - 2.0 * x[:, 5] + rng.normal(scale=0.1, size=2000)
    t0 = time.perf_counter()
    GradientBoostedRegressor(n_estimators=40, max_depth=3).fit(x, y)
    return time.perf_counter() - t0


def timed_run(name: str, campaign, fast: bool, workers: int) -> float:
    """One cold timed driver run at a fixed worker count."""
    clear_feature_caches()
    shutdown_pool()  # pool spin-up cost is part of the configuration
    os.environ["REPRO_WORKERS"] = str(workers)
    # Cold means cold: the stage artifact store must not serve a
    # previous configuration's results into a timed run.
    os.environ["REPRO_ARTIFACT_CACHE"] = "0"
    try:
        t0 = time.perf_counter()
        run_experiment(name, campaign=campaign, fast=fast)
        return time.perf_counter() - t0
    finally:
        os.environ.pop("REPRO_WORKERS", None)
        os.environ.pop("REPRO_ARTIFACT_CACHE", None)


def bench_warm_all(campaign, fast: bool, fingerprint: str) -> dict:
    """Time warm `all` passes against a freshly primed artifact store.

    One cold pass primes a private store (not timed), then each timed
    pass replays every paper experiment as a pure cache read — the
    number CI gates so stage resolution/loading never silently regresses
    into recomputation.  Warm walls are milliseconds, so the committed
    baseline carries a wide ``tolerance`` band.
    """
    calibration = calibrate()
    runs = []
    ids = sorted(PAPER_EXPERIMENTS)
    with tempfile.TemporaryDirectory(prefix="repro-warmbench-") as cache_dir:
        os.environ["REPRO_ARTIFACT_CACHE"] = "1"
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        try:
            run_experiments(ids, campaign=campaign, fast=fast)  # prime
            for i in range(3):
                t0 = time.perf_counter()
                run_experiments(ids, campaign=campaign, fast=fast)
                wall = time.perf_counter() - t0
                runs.append(
                    {
                        "pass": i + 1,
                        "wall_s": round(wall, 4),
                        "normalized_wall": round(wall / calibration, 4),
                    }
                )
                print(f"  warm_all pass {i + 1}: {wall:.3f}s "
                      f"({wall / calibration:.2f}x calibration)")
        finally:
            os.environ.pop("REPRO_ARTIFACT_CACHE", None)
            os.environ.pop("REPRO_CACHE_DIR", None)
    best = min(r["normalized_wall"] for r in runs)
    return {
        "name": "warm_all",
        "mode": "fast" if fast else "full",
        "dataset_fingerprint": fingerprint,
        "cpu_count": os.cpu_count(),
        "calibration_s": round(calibration, 4),
        "experiments": len(ids),
        "runs": runs,
        "serial_normalized_wall": best,
        # Millisecond-scale walls jitter far more than minutes-long
        # drivers; the regression this gates (a warm pass recomputing
        # stages) is orders of magnitude over any plausible band.
        "tolerance": 3.0,
    }


def bench_campaign_cold(
    fast: bool,
    worker_counts: list[int],
    step_blocks: list[int] | None = None,
) -> dict:
    """Time cold campaign generation on :data:`CAMPAIGN_COLD_CELL`.

    ``use_cache=False`` keeps every timed run a full generation (no disk
    reads or writes), so the number tracks the scheduler + routing +
    congestion-solve pipeline itself — on the non-default cell, where a
    geometry or registry regression would not be masked by the
    default-cell caches the other scenarios lean on.

    ``step_blocks`` optionally sweeps the batched solver's block size
    (``REPRO_STEP_BLOCK``) at workers=1 after the worker sweep — an
    informational curve for picking :data:`repro.config.DEFAULT_STEP_BLOCK`;
    it is recorded but never gated (results are bit-identical at any
    block size, only the wall time moves).
    """
    import dataclasses

    from repro.campaign.runner import run_campaign as gen

    topology, routing = CAMPAIGN_COLD_CELL
    cfg = dataclasses.replace(
        experiment_config(fast),
        topology=topology,
        routing=routing,
        use_cache=False,
    )
    fingerprint = cfg.fingerprint()
    calibration = calibrate()

    def one_timed_gen(workers: int) -> float:
        shutdown_pool()
        os.environ["REPRO_WORKERS"] = str(workers)
        try:
            t0 = time.perf_counter()
            gen(cfg)
            return time.perf_counter() - t0
        finally:
            os.environ.pop("REPRO_WORKERS", None)

    runs = []
    for workers in worker_counts:
        wall = one_timed_gen(workers)
        runs.append(
            {
                "workers": workers,
                "wall_s": round(wall, 4),
                "normalized_wall": round(wall / calibration, 4),
            }
        )
        print(f"  campaign_cold workers={workers}: {wall:.2f}s "
              f"({wall / calibration:.1f}x calibration)")

    sweep = []
    for block in step_blocks or []:
        os.environ["REPRO_STEP_BLOCK"] = str(block)
        try:
            wall = one_timed_gen(workers=1)
        finally:
            os.environ.pop("REPRO_STEP_BLOCK", None)
        sweep.append(
            {
                "step_block": block,
                "wall_s": round(wall, 4),
                "normalized_wall": round(wall / calibration, 4),
            }
        )
        print(f"  campaign_cold step_block={block}: {wall:.2f}s "
              f"({wall / calibration:.1f}x calibration)")

    serial = next((r for r in runs if r["workers"] == 1), runs[0])
    fastest = min(runs, key=lambda r: r["wall_s"])
    result = {
        "name": "campaign_cold",
        "mode": "fast" if fast else "full",
        "cell": f"{topology}/{routing}",
        "dataset_fingerprint": fingerprint,
        "cpu_count": os.cpu_count(),
        "calibration_s": round(calibration, 4),
        "runs": runs,
        "serial_normalized_wall": serial["normalized_wall"],
        "best_speedup_vs_serial": round(
            serial["wall_s"] / fastest["wall_s"], 3
        ),
        "best_speedup_workers": fastest["workers"],
    }
    if sweep:
        result["step_block_sweep"] = sweep
    return result


#: Datasets the stream_append scenario retrains on — two suffice to
#: exercise the multi-key append path without tripling the drift cost.
STREAM_APPEND_KEYS = ["AMG-128", "MILC-128"]


def bench_stream_append(fast: bool) -> dict:
    """Time one-window appends against a primed streamed campaign.

    Primes a two-window stream (generation + drift training, not timed)
    into a private cache, then times consecutive appends: each timed
    pass adds exactly one window, so the wall is one window's campaign
    generation plus the shard-scoped drift stages (train + eval on the
    new shard, reduce, render) — the incremental-append cost the
    streaming refactor gates.  A regression here means an append started
    recomputing old shards (the ``stream-append`` CI job catches the
    correctness side; this catches the wall).
    """
    from repro.campaign.streaming import StreamConfig, run_stream
    from repro.experiments.stream_drift import stream_drift

    calibration = calibrate()
    base = experiment_config(fast)
    window_days = 2.0
    primed, appends = 2, 3
    runs = []
    with tempfile.TemporaryDirectory(prefix="repro-streambench-") as cache_dir:
        os.environ["REPRO_ARTIFACT_CACHE"] = "1"
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        os.environ["REPRO_WORKERS"] = "1"
        try:
            camp = run_stream(
                StreamConfig(base=base, windows=primed, window_days=window_days)
            )
            stream_drift(camp, keys=STREAM_APPEND_KEYS, fast=fast)  # prime
            for i in range(appends):
                windows = primed + 1 + i
                clear_feature_caches()  # in-memory warmth is not an append
                shutdown_pool()
                t0 = time.perf_counter()
                camp = run_stream(
                    StreamConfig(
                        base=base, windows=windows, window_days=window_days
                    )
                )
                stream_drift(camp, keys=STREAM_APPEND_KEYS, fast=fast)
                wall = time.perf_counter() - t0
                runs.append(
                    {
                        "windows": windows,
                        "wall_s": round(wall, 4),
                        "normalized_wall": round(wall / calibration, 4),
                    }
                )
                print(f"  stream_append -> windows={windows}: {wall:.2f}s "
                      f"({wall / calibration:.2f}x calibration)")
            fingerprint = camp.stream.fingerprint
        finally:
            os.environ.pop("REPRO_ARTIFACT_CACHE", None)
            os.environ.pop("REPRO_CACHE_DIR", None)
            os.environ.pop("REPRO_WORKERS", None)
    best = min(r["normalized_wall"] for r in runs)
    return {
        "name": "stream_append",
        "mode": "fast" if fast else "full",
        "dataset_fingerprint": fingerprint,
        "cpu_count": os.cpu_count(),
        "calibration_s": round(calibration, 4),
        "keys": STREAM_APPEND_KEYS,
        "window_days": window_days,
        "runs": runs,
        "serial_normalized_wall": best,
        # Append walls are seconds-scale and dominated by one window's
        # generation; give them more slack than the minutes-long drivers.
        "tolerance": 0.5,
    }


def bench_profile(campaign, fast: bool, fingerprint: str, out_dir: Path) -> dict:
    """One profiled cold ``all`` pass -> ``PROFILE_all_fast.json``.

    Runs every paper experiment serially with ``REPRO_PROFILE=1`` and
    the artifact store off (cold-for-cold, like the timed benches),
    aggregates the trace into per-stage resource records, and
    normalizes stage walls by the calibration factor so the committed
    baseline is machine-speed independent — ``python -m repro.obs
    diff`` gates against exactly this file.  The raw ``profile.json``
    and a chrome-trace export land in ``out_dir`` for CI upload.
    """
    import shutil

    from repro.obs import trace as obs_trace
    from repro.obs.export import export_trace
    from repro.obs.report import load_trace

    calibration = calibrate()
    ids = sorted(PAPER_EXPERIMENTS)
    clear_feature_caches()
    shutdown_pool()
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as tmp:
        trace_path = Path(tmp) / "profile-all.jsonl"
        os.environ["REPRO_PROFILE"] = "1"
        os.environ["REPRO_WORKERS"] = "1"
        os.environ["REPRO_ARTIFACT_CACHE"] = "0"
        try:
            obs_trace.end_run()  # a clean sink for exactly this run
            obs_trace.start_run("profile-all", path=trace_path)
            t0 = time.perf_counter()
            run_experiments(ids, campaign=campaign, fast=fast)
            wall = time.perf_counter() - t0
            obs_trace.end_run()  # flushes metrics + writes profile.json
        finally:
            os.environ.pop("REPRO_PROFILE", None)
            os.environ.pop("REPRO_WORKERS", None)
            os.environ.pop("REPRO_ARTIFACT_CACHE", None)
        profile_path = trace_path.with_name("profile-all.profile.json")
        prof = json.loads(profile_path.read_text(encoding="utf-8"))
        shutil.copy(profile_path, out_dir / "profile.json")
        export_trace(
            load_trace(trace_path), "chrome-trace",
            out_dir / "profile.chrome.json",
        )
    print(f"  profile_all: {wall:.2f}s over {len(ids)} experiments "
          f"({wall / calibration:.1f}x calibration)")

    stages = {}
    for key, rec in prof["stages"].items():
        cpu = rec["cpu_user"] + rec["cpu_sys"]
        stages[key] = {
            "calls": rec["calls"],
            "status": rec["status"],
            "wall_s": round(rec["wall"], 4),
            "normalized_wall": round(rec["wall"] / calibration, 4),
            "cpu_s": round(cpu, 4),
            "normalized_cpu": round(cpu / calibration, 4),
            "maxrss_kb": rec["maxrss_kb"],
        }
    return {
        "name": "profile_all",
        "mode": "fast" if fast else "full",
        "dataset_fingerprint": fingerprint,
        "cpu_count": os.cpu_count(),
        "calibration_s": round(calibration, 4),
        "experiments": len(ids),
        "wall_s": round(wall, 4),
        "normalized_wall": round(wall / calibration, 4),
        "stages": stages,
    }


def bench_one(
    name: str, campaign, fast: bool, worker_counts: list[int], fingerprint: str
) -> dict:
    calibration = calibrate()
    runs = []
    for workers in worker_counts:
        wall = timed_run(name, campaign, fast, workers)
        runs.append(
            {
                "workers": workers,
                "wall_s": round(wall, 4),
                "normalized_wall": round(wall / calibration, 4),
            }
        )
        print(f"  {name} workers={workers}: {wall:.2f}s "
              f"({wall / calibration:.1f}x calibration)")
    serial = next((r for r in runs if r["workers"] == 1), runs[0])
    fastest = min(runs, key=lambda r: r["wall_s"])
    return {
        "name": name,
        "mode": "fast" if fast else "full",
        "dataset_fingerprint": fingerprint,
        "cpu_count": os.cpu_count(),
        "calibration_s": round(calibration, 4),
        "runs": runs,
        "serial_normalized_wall": serial["normalized_wall"],
        "best_speedup_vs_serial": round(
            serial["wall_s"] / fastest["wall_s"], 3
        ),
        "best_speedup_workers": fastest["workers"],
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--bench", action="append", choices=BENCHES,
                    help="driver(s) to time (default: all)")
    ap.add_argument("--workers", default="1,4",
                    help="comma-separated worker counts to sweep")
    ap.add_argument("--fast", action="store_true",
                    help="test-scale campaign (the CI smoke configuration)")
    ap.add_argument("--step-block", default=None,
                    help="comma-separated REPRO_STEP_BLOCK values to sweep "
                    "at workers=1 in the campaign_cold bench (e.g. "
                    "'1,16,64'; informational, never gated)")
    ap.add_argument("--out", default="benchmarks",
                    help="directory for BENCH_<name>.json files")
    ap.add_argument("--profile", action="store_true",
                    help="run one profiled cold `all` pass and emit "
                    "PROFILE_all_<mode>.json (the obs diff baseline) "
                    "instead of the timed benches")
    args = ap.parse_args(argv)

    worker_counts = [int(w) for w in args.workers.split(",")]
    step_blocks = (
        [int(b) for b in args.step_block.split(",")]
        if args.step_block else None
    )
    # --profile replaces the timed benches unless some were named.
    benches = args.bench or ([] if args.profile else BENCHES)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    cfg = experiment_config(args.fast)
    fingerprint = cfg.fingerprint()
    print(f"campaign {fingerprint} (mode={'fast' if args.fast else 'full'}, "
          f"cpu_count={os.cpu_count()})")
    # campaign_cold and stream_append generate their own campaigns;
    # don't pay for the default one unless another scenario needs it.
    campaign = (
        run_campaign(cfg, progress=True)
        if args.profile or set(benches) - {"campaign_cold", "stream_append"}
        else None
    )

    if args.profile:
        result = bench_profile(campaign, args.fast, fingerprint, out_dir)
        mode = "fast" if args.fast else "full"
        path = out_dir / f"PROFILE_all_{mode}.json"
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"  wrote {path}")

    for name in benches:
        if name == "campaign_cold":
            result = bench_campaign_cold(args.fast, worker_counts, step_blocks)
        elif name == "stream_append":
            result = bench_stream_append(args.fast)
        elif name == "warm_all":
            result = bench_warm_all(campaign, args.fast, fingerprint)
        else:
            # Warm pass: campaign-independent one-time costs (imports, disk
            # cache materialisation) land here, not in the timed runs.
            timed_run(name, campaign, args.fast, workers=1)
            result = bench_one(
                name, campaign, args.fast, worker_counts, fingerprint
            )
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
