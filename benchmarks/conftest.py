"""Benchmark fixtures: one shared campaign for every table/figure bench.

By default the benches run against the benchmark-scale 120-day campaign
(generated once and cached on disk; ~3 minutes cold).  Set ``REPRO_FAST=1``
to smoke the whole harness on the test-scale campaign instead, and
``REPRO_WORKERS=N`` (0 = all cores) to generate a cold campaign on N
worker processes — the datasets are bit-identical for any worker count,
so the cache entry is shared either way.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.context import experiment_config, fast_requested
from repro.campaign.runner import run_campaign


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): which paper table/figure this regenerates"
    )


@pytest.fixture(autouse=True)
def _no_artifact_cache(monkeypatch):
    """Benches time the computation, not a stage-cache read."""
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "0")


@pytest.fixture(scope="session")
def fast() -> bool:
    return fast_requested()


@pytest.fixture(scope="session")
def campaign(fast):
    """The campaign every figure bench analyses (cached on disk)."""
    return run_campaign(experiment_config(fast), progress=True)


@pytest.fixture()
def once(benchmark):
    """Run the benched callable exactly once (experiments are minutes-long;
    statistical repetition happens across CV folds inside them)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
