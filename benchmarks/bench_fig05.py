"""Bench: Fig. 5 — miniVite & UMT @128 compute/MPI split + routines.

Shape targets: miniVite >95% MPI with Waitall dominant; UMT the smallest
MPI fraction of the four codes yet a large worst/best MPI spread.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("fig05")
def test_fig05_mpi_breakdown_minivite_umt(once, campaign):
    res = once(run_experiment, "fig05", campaign=campaign)
    print("\n" + res.render())
    mv = res.data["miniVite-128"]
    assert mv["mpi_fraction"] > 0.95
    assert mv["routines"]["Waitall"]["average"] > 0.6 * mv["mpi"]["average"]
    umt = res.data["UMT-128"]
    assert umt["mpi_fraction"] < 0.6  # smallest of the four codes
    assert umt["mpi"]["worst"] > 1.3 * umt["mpi"]["best"]
    assert {"Wait", "Barrier", "Allreduce"} <= set(umt["routines"])
