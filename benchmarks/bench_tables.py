"""Bench: Tables I, II and III.

Table III shape targets: some users appear in multiple datasets' high-MI
lists (the paper's users 2/8/11 appear in four); most blamed users are
ground-truth aggressors; our own probe account (User-8, the paper's
'User 8 is Bhatele') can show up in its own blame lists.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("table01")
def test_table01_applications(once):
    res = once(run_experiment, "table01")
    print("\n" + res.render())
    assert len(res.data["rows"]) == 6


@pytest.mark.paper_artifact("table02")
def test_table02_counters(once):
    res = once(run_experiment, "table02")
    print("\n" + res.render())
    assert len(res.data["rows"]) == 13


@pytest.mark.paper_artifact("table03")
def test_table03_correlated_users(once, campaign, fast):
    res = once(run_experiment, "table03", campaign=campaign)
    print("\n" + res.render())
    table = res.data["table"]
    assert len(table) == 6
    counts = res.data["list_counts"]
    if counts:
        # Repeat offenders exist across datasets.
        assert max(counts.values()) >= 2
    if not fast:
        assert max(counts.values()) >= 4  # paper: users 2/8/11 in 4 lists
        assert res.data["recovery_rate"] >= 0.6
