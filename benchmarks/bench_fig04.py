"""Bench: Fig. 4 — AMG & MILC @512 compute/MPI split + routine breakdown.

Shape targets: MPI dominates (AMG ~82%+, MILC ~89%+ of time); compute is
stable across runs (no OS noise); MPI time varies strongly best-to-worst;
the paper's dominant routines carry the bulk of MPI time.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("fig04")
def test_fig04_mpi_breakdown_amg_milc(once, campaign):
    res = once(run_experiment, "fig04", campaign=campaign)
    print("\n" + res.render())
    for key in ("AMG-512", "MILC-512"):
        stats = res.data[key]
        assert stats["mpi_fraction"] > 0.75
        comp = stats["compute"]
        assert abs(comp["worst"] - comp["best"]) < 0.1 * comp["average"]
        assert stats["mpi"]["worst"] > 1.2 * stats["mpi"]["best"]
    amg_routines = set(res.data["AMG-512"]["routines"])
    assert {"Iprobe", "Test", "Testall", "Waitall", "Allreduce"} <= amg_routines
    milc_routines = set(res.data["MILC-512"]["routines"])
    assert {"Allreduce", "Wait", "Isend", "Irecv"} <= milc_routines
