"""CI gate: compare fresh BENCH_*.json files against committed baselines.

The comparison is on ``serial_normalized_wall`` — the workers=1 wall
divided by the machine calibration factor — so a faster or slower runner
cancels out and only *algorithmic* regressions trip the gate.  Speedup
numbers are informational (they depend on the runner's core count).

Usage::

    python -m benchmarks.compare_bench --baseline benchmarks/baselines \
        --current bench_out --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def compare(baseline_dir: Path, current_dir: Path, tolerance: float) -> list[str]:
    """Regression messages (empty = pass)."""
    failures = []
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        return [f"no baselines found under {baseline_dir}"]
    for base_path in baselines:
        base = json.loads(base_path.read_text())
        cur_path = current_dir / base_path.name
        if not cur_path.exists():
            failures.append(f"{base_path.name}: missing from current run")
            continue
        cur = json.loads(cur_path.read_text())
        if cur.get("dataset_fingerprint") != base.get("dataset_fingerprint"):
            # A campaign-config change moves the goalposts; report, don't gate.
            print(f"{base_path.name}: dataset fingerprint changed, skipping "
                  "wall comparison (re-baseline)")
            continue
        ref = base["serial_normalized_wall"]
        got = cur["serial_normalized_wall"]
        # Very fast scenarios (e.g. the warm cache-read pass) are noisier
        # than minutes-long drivers; a baseline may carry its own band.
        tol = float(base.get("tolerance", tolerance))
        ratio = got / ref if ref > 0 else float("inf")
        verdict = "OK" if ratio <= 1 + tol else "REGRESSION"
        print(f"{base['name']}: normalized serial wall {ref:.2f} -> {got:.2f} "
              f"({ratio:.2f}x, tolerance {1 + tol:.2f}x) {verdict}")
        if ratio > 1 + tol:
            failures.append(
                f"{base['name']}: {ratio:.2f}x over baseline "
                f"(limit {1 + tol:.2f}x)"
            )
        elif ratio > 0 and ratio < 1:
            # Improvements deserve an explicit line in the CI log (and a
            # hint that the headroom can be banked by re-baselining).
            print(f"  improvement: {1 / ratio:.2f}x faster than baseline "
                  "(consider re-baselining to lock it in)")
        speed = cur.get("best_speedup_vs_serial")
        if speed is not None:
            print(f"  speedup at workers={cur.get('best_speedup_workers')}: "
                  f"{speed:.2f}x (informational)")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--baseline", default="benchmarks/baselines")
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional slowdown (0.25 = +25%%)")
    args = ap.parse_args(argv)
    failures = compare(Path(args.baseline), Path(args.current), args.tolerance)
    for msg in failures:
        print(f"FAIL: {msg}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
