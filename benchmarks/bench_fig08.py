"""Bench: Fig. 8 — forecasting MAPE for the AMG datasets.

Shape targets: MAPE in the paper's 2–12% band for every (m, k, tier)
cell; at the larger horizon, the longer temporal context (m=8) does not
hurt and typically helps (the paper's m-trend).
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("fig08")
def test_fig08_forecast_amg(once, campaign, fast):
    res = once(run_experiment, "fig08", campaign=campaign, fast=fast)
    print("\n" + res.render())
    grid = res.data["grid"]
    assert set(grid) == {"AMG-128", "AMG-512"}
    for key, cells in grid.items():
        assert len(cells) == 8  # 2 m x 2 k x 2 tiers
        for cell in cells:
            assert cell.mape > 0
            if not fast:
                assert cell.mape < 15.0, f"{key} {cell}"
    if fast:
        return

    def cell(key, m, k, tier):
        return next(
            r.mape for r in grid[key] if (r.m, r.k, r.tier) == (m, k, tier)
        )

    # AMG-512 shows the paper's trends cleanly: more context and a longer
    # horizon both lower the error.
    assert cell("AMG-512", 8, 10, "app") <= cell("AMG-512", 3, 5, "app") + 0.5
    # Placement features add little for AMG (paper §V-C).
    for key in grid:
        gap = abs(cell(key, 8, 10, "app") - cell(key, 8, 10, "app+placement"))
        assert gap < 3.0
