"""Bench: Fig. 10 — forecasting MAPE for the MILC datasets.

Shape targets: MAPE within the paper's band; adding the LDMS io features
improves MILC's forecasts relative to app-only features (bandwidth-bound
code, sensitive to system-wide I/O traffic; §V-C), with io+sys at least
as good as app-only for the large (m, k) cell.
"""

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("fig10")
def test_fig10_forecast_milc(once, campaign, fast):
    res = once(run_experiment, "fig10", campaign=campaign, fast=fast)
    print("\n" + res.render())
    grid = res.data["grid"]
    assert set(grid) == {"MILC-128", "MILC-512"}
    for key, cells in grid.items():
        assert len(cells) == 16  # 2 m x 2 k x 4 tiers
        for cell in cells:
            assert cell.mape > 0
            if not fast:
                assert cell.mape < 15.0, f"{key} {cell}"
    if fast:
        return

    def cell(key, m, k, tier):
        return next(
            r.mape for r in grid[key] if (r.m, r.k, r.tier) == (m, k, tier)
        )

    # The paper's io/sys benefit reproduces at the headline cell for the
    # 128-node dataset; the 512-node job spans ~1/3 of the reduced machine
    # and its own routers already observe most of the global state, so the
    # LDMS features are neutral there (see EXPERIMENTS.md).
    def best_io(key, m, k):
        return min(
            cell(key, m, k, "app+placement+io"),
            cell(key, m, k, "app+placement+io+sys"),
        )

    assert best_io("MILC-128", 30, 40) <= cell("MILC-128", 30, 40, "app") + 0.2
    assert best_io("MILC-512", 30, 40) <= cell("MILC-512", 30, 40, "app") + 1.0
