"""Bench: Fig. 11 — forecasting-model feature importances.

Shape targets: for the MILC panels (all 23 features), the system-wide I/O
flit counter IO_PT_FLIT_TOT carries top-tier relevance — the paper's
standout finding; for the AMG panels stall/flit counters dominate and
placement features stay minor.
"""

import numpy as np
import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("fig11")
def test_fig11_forecasting_importances(once, campaign, fast):
    res = once(run_experiment, "fig11", campaign=campaign, fast=fast)
    print("\n" + res.render())
    for key, d in res.data.items():
        imp = d["importances"]
        assert np.isclose(imp.sum(), 1.0)
        assert (imp >= 0).all()
    if fast:
        return
    for key in ("MILC-128", "MILC-512"):
        d = res.data[key]
        names, imp = d["names"], d["importances"]
        order = list(np.argsort(-imp))
        # The paper's standout: system-wide I/O traffic counters carry
        # top-tier relevance for MILC.  Our importance mass splits across
        # the correlated IO_* channels (the paper's concentrates on
        # IO_PT_FLIT_TOT); assert the family, not the single member.
        io_rank = min(
            order.index(i) for i, n in enumerate(names) if n.startswith("IO_")
        )
        assert io_rank < 5, f"{key}: best IO_* feature rank {io_rank}"
    for key in ("AMG-128", "AMG-512"):
        d = res.data[key]
        names, imp = d["names"], d["importances"]
        # Placement features are not the headline signal for AMG.
        pl = imp[names.index("NUM_ROUTERS")] + imp[names.index("NUM_GROUPS")]
        assert pl < 0.5
