"""Extension benches beyond the paper's artefacts (DESIGN.md §7).

* Forecaster ablation: the paper's attention model vs a GBR-over-windows
  baseline and a no-learning strawman, on the MILC-128 dataset.
* Scheduling what-if: quantify §V-A's "delay communication-sensitive
  jobs" suggestion on the campaign data.
"""

import pytest

from repro.analysis.baselines import compare_forecasters
from repro.analysis.whatif import scheduling_whatif
from repro.ml.attention import AttentionForecaster


def _attention(seed=0):
    return AttentionForecaster(d_model=24, hidden=48, epochs=160, seed=seed)


@pytest.mark.paper_artifact("extension:forecaster-ablation")
def test_forecaster_ablation(once, campaign, fast):
    ds = campaign["MILC-128"]
    m, k = (10, 20) if ds.num_steps >= 40 else (4, 8)
    res = once(
        compare_forecasters,
        ds,
        m=m,
        k=k,
        tier="app",
        n_splits=2,
        attention_factory=_attention,
    )
    print(f"\nforecaster ablation on {ds.key} (m={m}, k={k}): {res.mapes}")
    assert set(res.mapes) == {"attention", "gbr", "ridge", "mean-target"}
    # Learned models beat the strawman.
    learned = min(res.mapes["attention"], res.mapes["gbr"])
    assert learned <= res.mapes["mean-target"] + 0.5


@pytest.mark.paper_artifact("extension:scheduling-whatif")
def test_scheduling_whatif(once, campaign, fast):
    results = once(scheduling_whatif, campaign)
    print("\nscheduling what-if (delay jobs while aggressors run):")
    for r in results:
        print(
            f"  {r.key:14s} overlapped={r.runs_overlapped:4d} "
            f"clean={r.runs_clean:4d} saving={r.saving_fraction:6.1%} "
            f"net={r.net_saving_fraction:5.1%}"
        )
    assert len(results) >= 4
    if not fast:
        # Aggressor overlap costs real time on at least half the datasets.
        costly = [r for r in results if r.saving_fraction > 0.02]
        assert len(costly) >= len(results) // 2
