"""Legacy setup shim: the execution environment lacks the `wheel` package,
so PEP 660 editable installs fail; this enables `pip install -e .` via the
setuptools legacy develop path. All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
